// Package plot renders X/Y series as ASCII charts, so the command-line
// harness can show the shape of the paper's figures — saturation knees,
// crossovers between configurations, latency blow-ups — directly in a
// terminal, without external plotting tools. Multiple series share one
// canvas and are distinguished by marker characters; a legend, axis
// ranges and tick labels complete the chart.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X, Y []float64
}

// markers distinguishes up to len(markers) series on one canvas.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart renders the series onto a width x height character canvas with
// axes and a legend. Width and height refer to the plotting area; the
// full output is larger by the axis gutters.
type Chart struct {
	Title          string
	XLabel, YLabel string
	Width, Height  int
	Series         []Series
}

// Render draws the chart. It returns an error when the chart is empty or
// malformed (mismatched X/Y lengths, too many series, non-positive
// dimensions).
func (c *Chart) Render() (string, error) {
	if c.Width < 10 || c.Height < 4 {
		return "", fmt.Errorf("plot: canvas %dx%d too small", c.Width, c.Height)
	}
	if len(c.Series) == 0 {
		return "", fmt.Errorf("plot: no series")
	}
	if len(c.Series) > len(markers) {
		return "", fmt.Errorf("plot: %d series exceed the %d available markers", len(c.Series), len(markers))
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) || math.IsInf(s.X[i], 0) || math.IsInf(s.Y[i], 0) {
				continue
			}
			points++
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if points == 0 {
		return "", fmt.Errorf("plot: no finite points")
	}
	// Zero-span axes still need a drawable range (xmax >= xmin and
	// ymax >= ymin hold by construction of the min/max scan).
	if xmax <= xmin {
		xmax = xmin + 1
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}
	// Anchor the y axis at zero when the data is non-negative: the
	// paper's figures all start at the origin.
	if ymin > 0 && ymin < ymax/2 {
		ymin = 0
	}
	if xmin > 0 && xmin < xmax/2 {
		xmin = 0
	}

	canvas := make([][]byte, c.Height)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", c.Width))
	}
	for si, s := range c.Series {
		m := markers[si]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(c.Width-1)))
			row := int(math.Round((s.Y[i] - ymin) / (ymax - ymin) * float64(c.Height-1)))
			if col < 0 || col >= c.Width || row < 0 || row >= c.Height {
				continue
			}
			canvas[c.Height-1-row][col] = m
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yLo, yHi := formatTick(ymin), formatTick(ymax)
	gutter := len(yLo)
	if len(yHi) > gutter {
		gutter = len(yHi)
	}
	for r, line := range canvas {
		label := strings.Repeat(" ", gutter)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", gutter, yHi)
		case c.Height - 1:
			label = fmt.Sprintf("%*s", gutter, yLo)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", gutter), strings.Repeat("-", c.Width))
	xLo, xHi := formatTick(xmin), formatTick(xmax)
	pad := c.Width - len(xLo) - len(xHi)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", gutter), xLo, strings.Repeat(" ", pad), xHi)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s, y: %s\n", strings.Repeat(" ", gutter), c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", gutter), markers[si], s.Name)
	}
	return b.String(), nil
}

// formatTick renders an axis extreme compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	//smartlint:allow floateq — an exactly-zero tick prints "0"; near-zero ticks keep their precision
	case v == 0:
		return "0"
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
