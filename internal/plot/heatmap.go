package plot

import (
	"fmt"
	"math"
	"strings"
)

// intensity maps a normalized value to a density character.
var intensity = []byte(" .:-=+*#%@")

// Heatmap renders a 2D grid of non-negative values as character
// densities, normalized to the grid maximum. The paper's §9 reasons about
// spatial congestion ("a continuous area of congestion along this
// diagonal", "underloaded areas ... along or near the two main
// diagonals"); a heatmap of per-router channel utilization makes those
// patterns visible in a terminal.
type Heatmap struct {
	Title string
	// Values[row][col]; all rows must have equal length.
	Values [][]float64
	// RowLabel and ColLabel annotate the axes.
	RowLabel, ColLabel string
}

// Render draws the heatmap with a scale legend.
func (h *Heatmap) Render() (string, error) {
	if len(h.Values) == 0 || len(h.Values[0]) == 0 {
		return "", fmt.Errorf("plot: empty heatmap")
	}
	cols := len(h.Values[0])
	max := 0.0
	for r, row := range h.Values {
		if len(row) != cols {
			return "", fmt.Errorf("plot: heatmap row %d has %d columns, want %d", r, len(row), cols)
		}
		for _, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return "", fmt.Errorf("plot: heatmap values must be finite and non-negative, got %v", v)
			}
			max = math.Max(max, v)
		}
	}
	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "%s\n", h.Title)
	}
	for _, row := range h.Values {
		b.WriteString("  ")
		for _, v := range row {
			b.WriteByte(cell(v, max))
			b.WriteByte(cell(v, max)) // double width: terminal cells are tall
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  scale: '%c'=0", intensity[0])
	if max > 0 {
		fmt.Fprintf(&b, " to '%c'=%.3f", intensity[len(intensity)-1], max)
	}
	b.WriteByte('\n')
	if h.RowLabel != "" || h.ColLabel != "" {
		fmt.Fprintf(&b, "  rows: %s, cols: %s\n", h.RowLabel, h.ColLabel)
	}
	return b.String(), nil
}

// cell picks the density character for value v on a scale to max.
func cell(v, max float64) byte {
	if max <= 0 {
		return intensity[0]
	}
	idx := int(v / max * float64(len(intensity)-1))
	if idx >= len(intensity) {
		idx = len(intensity) - 1
	}
	return intensity[idx]
}
