package plot

import (
	"math"
	"strings"
	"testing"
)

func line(n int, f func(i int) float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = f(i)
	}
	return v
}

func TestRenderBasicChart(t *testing.T) {
	c := Chart{
		Title: "throughput", XLabel: "offered", YLabel: "accepted",
		Width: 40, Height: 10,
		Series: []Series{{
			Name: "cube",
			X:    line(10, func(i int) float64 { return float64(i) / 10 }),
			Y:    line(10, func(i int) float64 { return float64(i) / 10 }),
		}},
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "throughput") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "* cube") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "x: offered, y: accepted") {
		t.Error("axis labels missing")
	}
	if strings.Count(out, "*") < 9 { // 9+ plotted markers + legend
		t.Errorf("too few plotted points:\n%s", out)
	}
}

func TestRenderMonotoneSeriesClimbs(t *testing.T) {
	c := Chart{
		Width: 30, Height: 8,
		Series: []Series{{
			Name: "up",
			X:    line(30, func(i int) float64 { return float64(i) }),
			Y:    line(30, func(i int) float64 { return float64(i) }),
		}},
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	// First canvas row (top) should have its marker to the right of the
	// bottom row's marker.
	top := strings.IndexByte(lines[0], '*')
	bottom := strings.IndexByte(lines[7], '*')
	if top <= bottom {
		t.Fatalf("monotone series not rendered as a climb (top col %d, bottom col %d):\n%s", top, bottom, out)
	}
}

func TestRenderMultipleSeriesDistinctMarkers(t *testing.T) {
	mk := func(name string, slope float64) Series {
		return Series{
			Name: name,
			X:    line(10, func(i int) float64 { return float64(i) }),
			Y:    line(10, func(i int) float64 { return slope * float64(i) }),
		}
	}
	c := Chart{Width: 30, Height: 10, Series: []Series{mk("a", 1), mk("b", 2), mk("c", 0.5)}}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, marker := range []string{"* a", "o b", "+ c"} {
		if !strings.Contains(out, marker) {
			t.Errorf("legend entry %q missing:\n%s", marker, out)
		}
	}
}

func TestRenderErrors(t *testing.T) {
	tiny := Chart{Width: 2, Height: 2, Series: []Series{{Name: "x", X: []float64{1}, Y: []float64{1}}}}
	if _, err := tiny.Render(); err == nil {
		t.Error("tiny canvas accepted")
	}
	empty := Chart{Width: 40, Height: 10}
	if _, err := empty.Render(); err == nil {
		t.Error("empty chart accepted")
	}
	ragged := Chart{Width: 40, Height: 10, Series: []Series{{Name: "r", X: []float64{1, 2}, Y: []float64{1}}}}
	if _, err := ragged.Render(); err == nil {
		t.Error("ragged series accepted")
	}
	var many []Series
	for i := 0; i < 9; i++ {
		many = append(many, Series{Name: "s", X: []float64{1}, Y: []float64{1}})
	}
	if _, err := (&Chart{Width: 40, Height: 10, Series: many}).Render(); err == nil {
		t.Error("too many series accepted")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	c := Chart{
		Width: 20, Height: 5,
		Series: []Series{{Name: "flat", X: []float64{0, 1, 2}, Y: []float64{5, 5, 5}}},
	}
	if _, err := c.Render(); err != nil {
		t.Fatalf("constant series failed: %v", err)
	}
}

func TestRenderSkipsNonFinite(t *testing.T) {
	inf := []float64{0, 1, 2}
	c := Chart{
		Width: 20, Height: 5,
		Series: []Series{{Name: "nan", X: inf, Y: []float64{1, nan(), 3}}},
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "*") != 2+1 { // two points + legend
		t.Errorf("NaN point not skipped:\n%s", out)
	}
	allBad := Chart{Width: 20, Height: 5, Series: []Series{{Name: "x", X: []float64{0}, Y: []float64{nan()}}}}
	if _, err := allBad.Render(); err == nil {
		t.Error("all-NaN series accepted")
	}
}

func nan() float64 { return math.NaN() }

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{0: "0", 0.5: "0.50", 3.25: "3.2", 150: "150", 4096: "4096"}
	for in, want := range cases {
		if got := formatTick(in); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", in, got, want)
		}
	}
}
