package plot

import (
	"math"
	"strings"
	"testing"
)

func TestHeatmapRender(t *testing.T) {
	h := Heatmap{
		Title: "load",
		Values: [][]float64{
			{0, 0.5, 1.0},
			{1.0, 0.5, 0},
		},
		RowLabel: "y", ColLabel: "x",
	}
	out, err := h.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "load") || !strings.Contains(out, "rows: y, cols: x") {
		t.Fatalf("annotations missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Row 1 of the grid: min, mid, max -> ' ', '+' (or similar), '@'.
	if !strings.HasSuffix(strings.TrimRight(lines[1], " "), "@@") {
		t.Fatalf("max cell not rendered with the top character: %q", lines[1])
	}
	if !strings.Contains(out, "'@'=1.000") {
		t.Fatalf("scale legend missing:\n%s", out)
	}
}

func TestHeatmapZeroGrid(t *testing.T) {
	h := Heatmap{Values: [][]float64{{0, 0}, {0, 0}}}
	out, err := h.Render()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "@") {
		t.Fatalf("zero grid rendered hot cells:\n%s", out)
	}
}

func TestHeatmapErrors(t *testing.T) {
	if _, err := (&Heatmap{}).Render(); err == nil {
		t.Error("empty heatmap accepted")
	}
	ragged := Heatmap{Values: [][]float64{{1, 2}, {3}}}
	if _, err := ragged.Render(); err == nil {
		t.Error("ragged heatmap accepted")
	}
	negative := Heatmap{Values: [][]float64{{-1}}}
	if _, err := negative.Render(); err == nil {
		t.Error("negative value accepted")
	}
	bad := Heatmap{Values: [][]float64{{math.NaN()}}}
	if _, err := bad.Render(); err == nil {
		t.Error("NaN accepted")
	}
}

func TestCellMonotone(t *testing.T) {
	prev := -1
	for v := 0.0; v <= 1.0; v += 0.05 {
		idx := strings.IndexByte(string(intensity), cell(v, 1.0))
		if idx < prev {
			t.Fatalf("cell intensity not monotone at %v", v)
		}
		prev = idx
	}
	if cell(0.5, 0) != intensity[0] {
		t.Fatal("zero max should render blank")
	}
}
