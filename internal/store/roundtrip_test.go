package store_test

import (
	"bytes"
	"testing"

	"smart/internal/core"
	"smart/internal/obs"
	"smart/internal/routing"
	"smart/internal/store"
)

// TestRoundTripEveryRoutingCase is the store's property test over the
// canonical case table: for every routing discipline the repo ships, a
// real run's record survives Put → reopen → Get digest-identically.
// Records come from actual simulations (not fabricated fixtures), so
// any digested field the store failed to persist — or failed to
// canonicalize symmetrically — fails the comparison.
func TestRoundTripEveryRoutingCase(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	cases := routing.Cases()
	want := map[string]string{} // fingerprint -> canonical digest
	for _, tc := range cases {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			cfg := core.Config{
				Network:   core.NetworkKind(tc.Family),
				Algorithm: tc.Algorithm,
				K:         tc.K,
				N:         tc.N,
				VCs:       tc.VCs,
				Load:      0.2,
				Seed:      11,
				Warmup:    100,
				Horizon:   400,
			}
			var manifest bytes.Buffer
			if _, err := core.RunWith(cfg, core.Options{
				Store:    st,
				Manifest: obs.NewManifestWriter(&manifest),
				Batch:    "cases",
				Index:    3, // position must not leak into the store
			}); err != nil {
				t.Fatal(err)
			}
			recs, err := obs.DecodeManifest(&manifest)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 1 {
				t.Fatalf("%d manifest records, want 1", len(recs))
			}
			canon := store.Canonical(recs[0])
			fp := recs[0].Fingerprint
			want[fp] = obs.Digest([]obs.RunRecord{canon})

			rec, digest, ok, err := st.Get(fp)
			if err != nil || !ok {
				t.Fatalf("Get(%s): ok=%v err=%v", fp, ok, err)
			}
			if digest != want[fp] {
				t.Fatalf("stored digest %s != canonical digest %s", digest, want[fp])
			}
			if got := obs.Digest([]obs.RunRecord{rec}); got != want[fp] {
				t.Fatalf("returned record recomputes to %s, want %s", got, want[fp])
			}
		})
	}
	if st.Len() != len(cases) {
		t.Fatalf("store holds %d records for %d cases", st.Len(), len(cases))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: every case must still be present and digest-identical.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if err := st2.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	for _, fp := range st2.Fingerprints() {
		rec, digest, ok, err := st2.Get(fp)
		if err != nil || !ok {
			t.Fatalf("reopened Get(%s): ok=%v err=%v", fp, ok, err)
		}
		if digest != want[fp] {
			t.Fatalf("reopened digest for %s = %s, want %s", fp, digest, want[fp])
		}
		if got := obs.Digest([]obs.RunRecord{rec}); got != want[fp] {
			t.Fatalf("reopened record %s recomputes to %s, want %s", fp, got, want[fp])
		}
	}
}
