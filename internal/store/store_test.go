package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smart/internal/metrics"
	"smart/internal/obs"
)

// testRecord fabricates a completed run record. The store keys entries
// by the record's Fingerprint field and never re-derives it from the
// config, so a synthetic fingerprint exercises the same paths.
func testRecord(fp string, seed uint64, load float64) obs.RunRecord {
	return obs.RunRecord{
		Schema:      obs.RunSchema,
		Label:       "tree adaptive-2vc",
		Pattern:     "uniform",
		Seed:        seed,
		Load:        load,
		Fingerprint: fp,
		Config:      json.RawMessage(`{"Network":"tree","VCs":2}`),
		Sample: metrics.Sample{
			Offered:          load,
			Accepted:         load * 0.9,
			AvgLatency:       20 + 100*load,
			PacketsDelivered: int64(1000 * load),
		},
		Cycles: 22000,
		WallMS: 12.5,
	}
}

func mustPut(t *testing.T, s *Store, rec obs.RunRecord) string {
	t.Helper()
	digest, err := s.Put(rec)
	if err != nil {
		t.Fatalf("Put(%s): %v", rec.Fingerprint, err)
	}
	return digest
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := testRecord("fp-1", 1, 0.5)
	rec.Batch, rec.Index = "some-batch", 7 // position must not be persisted
	digest := mustPut(t, s, rec)
	got, gotDigest, ok, err := s.Get("fp-1")
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if gotDigest != digest {
		t.Errorf("Get digest %s != Put digest %s", gotDigest, digest)
	}
	if got.Batch != "" || got.Index != 0 {
		t.Errorf("stored record kept position batch=%q index=%d; the store is content-addressed", got.Batch, got.Index)
	}
	want := Canonical(rec)
	if got.Sample != want.Sample || got.Cycles != want.Cycles || got.Seed != want.Seed ||
		got.Load != want.Load || string(got.Config) != string(want.Config) {
		t.Errorf("round trip mutated the record:\n got %+v\nwant %+v", got, want)
	}
	// The digest is the content identity: recomputing it over the
	// retrieved record must reproduce the stored value.
	if d := obs.Digest([]obs.RunRecord{got}); d != digest {
		t.Errorf("retrieved record digests %s, stored %s", d, digest)
	}
	if _, _, ok, err := s.Get("absent"); ok || err != nil {
		t.Errorf("Get(absent) = ok=%v err=%v, want miss with no error", ok, err)
	}
}

func TestPutRejectsFailures(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := testRecord("fp-f", 1, 0.5)
	rec.Failure = "stall: no progress"
	if _, err := s.Put(rec); err == nil {
		t.Fatal("failure records must not be cached")
	}
	if _, err := s.Put(obs.RunRecord{}); err == nil {
		t.Fatal("records without a fingerprint must be rejected")
	}
}

func TestSupersedeLastWriteWins(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := testRecord("fp-1", 1, 0.5)
	d1 := mustPut(t, s, first)
	// Identical content re-put is a no-op (same digest, no new line).
	sizeBefore := s.Stats().Bytes
	if d := mustPut(t, s, first); d != d1 {
		t.Errorf("identical re-put changed digest %s -> %s", d1, d)
	}
	if got := s.Stats().Bytes; got != sizeBefore {
		t.Errorf("identical re-put grew the store %d -> %d bytes", sizeBefore, got)
	}
	// WallMS and Shards are run-dependent, digest-zeroed fields:
	// a re-run differing only there is still identical content.
	rerun := first
	rerun.WallMS, rerun.Shards = 99.9, 4
	if d := mustPut(t, s, rerun); d != d1 {
		t.Errorf("wall-time-only change altered digest %s -> %s", d1, d)
	}
	// Different measured content supersedes.
	changed := first
	changed.Sample.Accepted = 0.123
	d2 := mustPut(t, s, changed)
	if d2 == d1 {
		t.Fatal("changed sample must change the digest")
	}
	if got, d, _, _ := s.Get("fp-1"); d != d2 || got.Sample.Accepted != 0.123 {
		t.Errorf("Get after supersede returned digest %s (want %s), accepted %g", d, d2, got.Sample.Accepted)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1 (supersede, not insert)", s.Len())
	}
	if sup := s.Stats().Superseded; sup != 1 {
		t.Errorf("Superseded = %d, want 1", sup)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the index must keep the latest entry.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, d, ok, err := s2.Get("fp-1"); err != nil || !ok || d != d2 || got.Sample.Accepted != 0.123 {
		t.Errorf("reopened Get = (accepted %g, %s, %v, %v), want latest entry %s", got.Sample.Accepted, d, ok, err, d2)
	}
	if sup := s2.Stats().Superseded; sup != 1 {
		t.Errorf("reopened Superseded = %d, want 1", sup)
	}
}

func TestSegmentRollAndCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.segBytes = 2048 // force frequent rolls
	digests := map[string]string{}
	for i := 0; i < 40; i++ {
		fp := fmt.Sprintf("fp-%02d", i)
		digests[fp] = mustPut(t, s, testRecord(fp, uint64(i), 0.25))
	}
	// Supersede half of them so compaction has garbage to drop.
	for i := 0; i < 40; i += 2 {
		fp := fmt.Sprintf("fp-%02d", i)
		rec := testRecord(fp, uint64(i), 0.25)
		rec.Sample.AvgLatency += 1
		digests[fp] = mustPut(t, s, rec)
	}
	if st := s.Stats(); st.Segments < 3 {
		t.Fatalf("segBytes=%d produced only %d segments; the roll path is untested", s.segBytes, st.Segments)
	}
	before := s.Stats()
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.Stats()
	if after.Segments != 1 {
		t.Errorf("Compact left %d segments, want 1", after.Segments)
	}
	if after.Records != 40 || s.Len() != 40 {
		t.Errorf("Compact changed record count %d -> %d", before.Records, after.Records)
	}
	if after.Bytes >= before.Bytes {
		t.Errorf("Compact did not reclaim space: %d -> %d bytes", before.Bytes, after.Bytes)
	}
	for fp, want := range digests {
		if _, d, ok, err := s.Get(fp); err != nil || !ok || d != want {
			t.Fatalf("after Compact Get(%s) = (%s, %v, %v), want %s", fp, d, ok, err, want)
		}
	}
	// The compacted store appends and reopens like any other.
	mustPut(t, s, testRecord("fp-new", 99, 0.75))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after Compact: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 41 {
		t.Errorf("reopened Len = %d, want 41", s2.Len())
	}
	if err := s2.VerifyAll(); err != nil {
		t.Errorf("VerifyAll after Compact: %v", err)
	}
}

// TestTornTailTruncatedOnReopen is the kill-mid-append contract: a
// process killed partway through an appended line loses that line and
// nothing else, and the next Open repairs the file for further appends.
func TestTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustPut(t, s, testRecord(fmt.Sprintf("fp-%d", i), uint64(i), 0.5))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(1))
	whole, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the kill: a partial sixth line with no newline.
	torn := append(append([]byte{}, whole...), []byte(`{"schema":"smart/store/v1","fingerprint":"fp-5","dig`)...)
	if err := os.WriteFile(seg, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	if s2.Len() != 5 {
		t.Errorf("Len after torn-tail reopen = %d, want 5", s2.Len())
	}
	// Every surviving record's digest re-verifies.
	if err := s2.VerifyAll(); err != nil {
		t.Errorf("VerifyAll after torn-tail reopen: %v", err)
	}
	// The tail was physically truncated, and the next append lands on a
	// clean line boundary.
	if fi, _ := os.Stat(seg); fi.Size() != int64(len(whole)) {
		t.Errorf("segment size %d after reopen, want %d (torn tail truncated)", fi.Size(), len(whole))
	}
	mustPut(t, s2, testRecord("fp-5", 5, 0.5))
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 6 {
		t.Errorf("Len after repair+append = %d, want 6", s3.Len())
	}
	if err := s3.VerifyAll(); err != nil {
		t.Errorf("VerifyAll after repair+append: %v", err)
	}
}

// TestKillAtEveryByte reopens a store truncated at every possible byte
// offset of its segment file: whatever the kill point, Open must
// succeed, keep exactly the records whose lines survived whole, and
// digest-verify all of them.
func TestKillAtEveryByte(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mustPut(t, s, testRecord(fmt.Sprintf("fp-%d", i), uint64(i), 0.5))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(1))
	whole, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// wantAt(n) = how many complete lines survive an n-byte prefix.
	wantAt := func(n int) int {
		return strings.Count(string(whole[:n]), "\n")
	}
	for cut := 0; cut <= len(whole); cut++ {
		if err := os.WriteFile(seg, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir)
		if err != nil {
			t.Fatalf("cut at byte %d: Open: %v", cut, err)
		}
		if got, want := s2.Len(), wantAt(cut); got != want {
			t.Fatalf("cut at byte %d: Len = %d, want %d", cut, got, want)
		}
		if err := s2.VerifyAll(); err != nil {
			t.Fatalf("cut at byte %d: VerifyAll: %v", cut, err)
		}
		s2.Close()
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	writeStore := func(t *testing.T) (string, string) {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		mustPut(t, s, testRecord("fp-0", 0, 0.5))
		mustPut(t, s, testRecord("fp-1", 1, 0.5))
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return dir, filepath.Join(dir, segmentName(1))
	}

	t.Run("bit flip in a record", func(t *testing.T) {
		dir, seg := writeStore(t)
		data, _ := os.ReadFile(seg)
		// Corrupt a digit inside the first record's sample without
		// breaking the JSON framing.
		tampered := strings.Replace(string(data), `"accepted":0.45`, `"accepted":0.46`, 1)
		if tampered == string(data) {
			t.Fatal("tamper target not found; fixture drifted")
		}
		if err := os.WriteFile(seg, []byte(tampered), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "digest verification") {
			t.Fatalf("tampered store opened: err = %v", err)
		}
	})

	t.Run("mid-file garbage line", func(t *testing.T) {
		dir, seg := writeStore(t)
		data, _ := os.ReadFile(seg)
		lines := strings.SplitAfter(string(data), "\n")
		bad := lines[0] + "not a store entry\n" + strings.Join(lines[1:], "")
		if err := os.WriteFile(seg, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); err == nil {
			t.Fatal("mid-file garbage must fail Open (only a torn tail is tolerated)")
		}
	})

	t.Run("unknown schema", func(t *testing.T) {
		dir, seg := writeStore(t)
		data, _ := os.ReadFile(seg)
		bad := strings.Replace(string(data), Schema, "smart/store/v999", 1)
		if err := os.WriteFile(seg, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "schema") {
			t.Fatalf("unknown schema opened: err = %v", err)
		}
	})
}

func TestGetVerifiesOnRead(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustPut(t, s, testRecord("fp-0", 0, 0.5))
	// Tamper with the file behind the open store's back: the in-memory
	// index still points at the entry, but the read-side digest check
	// must catch the changed bytes.
	seg := filepath.Join(dir, segmentName(1))
	data, _ := os.ReadFile(seg)
	tampered := strings.Replace(string(data), `"accepted":0.45`, `"accepted":0.46`, 1)
	if tampered == string(data) {
		t.Fatal("tamper target not found; fixture drifted")
	}
	if err := os.WriteFile(seg, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.Get("fp-0"); err == nil || !strings.Contains(err.Error(), "digest verification") {
		t.Fatalf("tampered read served: err = %v", err)
	}
}

func TestFingerprintsSorted(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, fp := range []string{"zz", "aa", "mm"} {
		mustPut(t, s, testRecord(fp, 1, 0.5))
	}
	got := s.Fingerprints()
	if len(got) != 3 || got[0] != "aa" || got[1] != "mm" || got[2] != "zz" {
		t.Errorf("Fingerprints() = %v, want sorted [aa mm zz]", got)
	}
}
