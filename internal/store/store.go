// Package store is the persistent, content-addressed result cache of
// the sweep service: completed run records keyed by their config
// fingerprint (Config.Fingerprint), with the record's order-independent
// obs.Digest stored alongside so every read re-verifies the bytes it
// hands out.
//
// On disk a store is a directory of JSONL segment files
// (seg-000001.jsonl, seg-000002.jsonl, ...), each line one Entry in the
// smart/store/v1 schema. Segments are append-only and inherit the
// torn-tail tolerance of the checkpoint journal (internal/resilience):
// a process killed mid-append leaves a partial final line that the next
// Open truncates away, and everything before it survives. Writes go to
// the highest-numbered (active) segment, which rolls over at a size
// threshold; an in-memory index maps each fingerprint to its latest
// entry's byte range, so lookups are one ReadAt. Re-putting a
// fingerprint appends a superseding entry (last write wins, exactly the
// resilience.DedupJournal discipline); Compact rewrites the live
// entries into a single fresh segment and deletes the garbage.
//
// Records are stored in canonical position: Batch and Index are
// cleared, because the store is addressed by config content while a
// record's position is context of the request that produced it. Readers
// that replay a cached record into a manifest re-stamp the position
// they need (core.RunWith does), which is what keeps a read-through
// sweep's manifest digest identical to an uncached one.
package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"sync"

	"smart/internal/obs"
	"smart/internal/order"
	"smart/internal/resilience"
)

// Schema versions the segment-line layout. Decoders reject entries
// whose schema they do not understand.
const Schema = "smart/store/v1"

// DefaultSegmentBytes is the roll-over threshold for the active
// segment: large enough that a paper-sized sweep fits in one file,
// small enough that compaction reclaims superseded entries in bounded
// chunks.
const DefaultSegmentBytes = 4 << 20

// Entry is one line of a segment file: a completed run record, its
// fingerprint key, and the content digest a reader re-verifies.
type Entry struct {
	Schema      string `json:"schema"`
	Fingerprint string `json:"fingerprint"`
	// Digest is obs.Digest of the single record — the ETag the sweep
	// service serves, pinned at write time and recomputed on every read.
	Digest string        `json:"digest"`
	Record obs.RunRecord `json:"record"`
}

// loc is an index entry: where a fingerprint's latest record lives.
type loc struct {
	seg    int   // index into Store.segs
	off    int64 // byte offset of the line
	length int64 // line length, newline excluded
	digest string
}

// Stats is a point-in-time summary of a store, served by the sweep
// service's status endpoint.
type Stats struct {
	// Records is the number of live fingerprints; Segments the on-disk
	// segment-file count; Bytes their total size.
	Records  int   `json:"records"`
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// Superseded counts on-disk entries shadowed by a later write for
	// the same fingerprint — the garbage Compact reclaims.
	Superseded int64 `json:"superseded"`
}

// Store is the persistent result cache. Safe for concurrent use: the
// sweep service reads and writes it from many request handlers at once.
type Store struct {
	//smartlint:allow concurrency — the store serializes HTTP-driven readers and writers; nothing here is on the simulation cycle path
	mu         sync.Mutex
	dir        string
	segs       []string // segment file names, ascending
	active     *os.File // highest-numbered segment, open for append
	activeSize int64
	segBytes   int64
	index      map[string]loc
	superseded int64
	closed     bool
}

// Open opens (creating if necessary) the store rooted at dir, scanning
// every segment into the in-memory index. Each scanned entry is decoded
// strictly and its digest re-verified, so a store that was tampered
// with — as opposed to torn by a crash — fails to open. The active
// segment's torn tail, if any, is truncated so appends start on a line
// boundary.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	names, err := segmentNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		names = []string{segmentName(1)}
		f, err := os.OpenFile(filepath.Join(dir, names[0]), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return nil, fmt.Errorf("store: creating first segment: %w", err)
		}
		return &Store{dir: dir, segs: names, active: f, segBytes: DefaultSegmentBytes, index: map[string]loc{}}, nil
	}
	s := &Store{dir: dir, segs: names, segBytes: DefaultSegmentBytes, index: map[string]loc{}}
	for i, name := range names {
		if err := s.loadSegment(i, name); err != nil {
			return nil, err
		}
	}
	last := filepath.Join(dir, names[len(names)-1])
	f, err := os.OpenFile(last, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: reopening active segment: %w", err)
	}
	// Drop the active segment's torn tail; sealed segments were only
	// ever active in a previous life, so a torn tail there is dead data
	// past their last complete line — already excluded by the scan.
	if err := resilience.TruncateTail(f, s.activeSize); err != nil {
		f.Close()
		return nil, err
	}
	s.active = f
	return s, nil
}

// loadSegment scans one segment file into the index. Each complete line
// must decode as a schema-valid Entry whose digest matches its record —
// mid-file corruption or tampering is an open error, a torn tail is
// silently excluded (and, on the active segment, truncated by Open).
func (s *Store) loadSegment(seg int, name string) error {
	path := filepath.Join(s.dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("store: reading segment %s: %w", name, err)
	}
	var off int64
	lines := 0
	locs, valid, err := resilience.DedupJournal(data, func(n int, line []byte) (string, loc, error) {
		e, err := decodeEntry(line)
		if err != nil {
			return "", loc{}, fmt.Errorf("store: segment %s line %d: %w", name, n, err)
		}
		l := loc{seg: seg, off: off, length: int64(len(line)), digest: e.Digest}
		off += int64(len(line)) + 1
		lines++
		return e.Fingerprint, l, nil
	})
	if err != nil {
		return err
	}
	// Lines DedupJournal collapsed within this segment are superseded
	// entries too — garbage Compact will reclaim.
	s.superseded += int64(lines - len(locs))
	// Later segments supersede earlier ones; within one segment
	// DedupJournal already kept the last line per fingerprint.
	for _, fp := range order.Keys(locs) {
		if _, ok := s.index[fp]; ok {
			s.superseded++
		}
		s.index[fp] = locs[fp]
	}
	if seg == len(s.segs)-1 {
		s.activeSize = valid
	}
	return nil
}

// decodeEntry strictly decodes one segment line and re-verifies its
// content digest — the read-side half of the content-addressing
// contract.
func decodeEntry(line []byte) (Entry, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var e Entry
	if err := dec.Decode(&e); err != nil {
		return e, fmt.Errorf("corrupt entry: %w", err)
	}
	if e.Schema != Schema {
		return e, fmt.Errorf("unknown schema %q (want %q)", e.Schema, Schema)
	}
	if e.Fingerprint == "" || e.Fingerprint != e.Record.Fingerprint {
		return e, fmt.Errorf("entry key %q does not match its record fingerprint %q", e.Fingerprint, e.Record.Fingerprint)
	}
	if d := obs.Digest([]obs.RunRecord{e.Record}); d != e.Digest {
		return e, fmt.Errorf("record %s fails digest verification: stored %s, recomputed %s", e.Fingerprint, e.Digest, d)
	}
	return e, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of live fingerprints on record.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats returns a point-in-time summary.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Records: len(s.index), Segments: len(s.segs), Superseded: s.superseded}
	for i, name := range s.segs {
		if i == len(s.segs)-1 {
			st.Bytes += s.activeSize
			continue
		}
		if fi, err := os.Stat(filepath.Join(s.dir, name)); err == nil {
			st.Bytes += fi.Size()
		}
	}
	return st
}

// Canonical returns rec in the position-free form the store persists:
// Batch and Index cleared, schema stamped. The store is addressed by
// config content; a record's position belongs to the request that
// produced it, and readers re-stamp it on replay.
func Canonical(rec obs.RunRecord) obs.RunRecord {
	rec.Batch = ""
	rec.Index = 0
	if rec.Schema == "" {
		rec.Schema = obs.RunSchema
	}
	return rec
}

// Put journals one completed run, canonicalized and flushed to the
// active segment before returning, and indexes it. Failure records are
// rejected — failures are cheap to re-attempt and must not be served
// from cache. Re-putting a fingerprint whose stored content digest is
// unchanged is a no-op; changed content appends a superseding entry.
// Put returns the entry's content digest (the service's ETag).
func (s *Store) Put(rec obs.RunRecord) (string, error) {
	if rec.Failure != "" {
		return "", fmt.Errorf("store: refusing to cache failure record %s (%s)", rec.Fingerprint, rec.Failure)
	}
	if rec.Fingerprint == "" {
		return "", fmt.Errorf("store: record has no fingerprint")
	}
	rec = Canonical(rec)
	digest := obs.Digest([]obs.RunRecord{rec})
	line, err := json.Marshal(Entry{Schema: Schema, Fingerprint: rec.Fingerprint, Digest: digest, Record: rec})
	if err != nil {
		return "", fmt.Errorf("store: encoding entry %s: %w", rec.Fingerprint, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", fmt.Errorf("store: %s is closed", s.dir)
	}
	if have, ok := s.index[rec.Fingerprint]; ok {
		if have.digest == digest {
			return digest, nil
		}
		s.superseded++
	}
	if s.activeSize > 0 && s.activeSize+int64(len(line))+1 > s.segBytes {
		if err := s.rollSegment(); err != nil {
			return "", err
		}
	}
	if _, err := s.active.Write(append(line, '\n')); err != nil {
		return "", fmt.Errorf("store: appending entry %s: %w", rec.Fingerprint, err)
	}
	s.index[rec.Fingerprint] = loc{seg: len(s.segs) - 1, off: s.activeSize, length: int64(len(line)), digest: digest}
	s.activeSize += int64(len(line)) + 1
	return digest, nil
}

// rollSegment seals the active segment and opens the next one. Called
// with the lock held.
func (s *Store) rollSegment() error {
	if err := s.active.Sync(); err != nil {
		return fmt.Errorf("store: syncing sealed segment: %w", err)
	}
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("store: sealing segment: %w", err)
	}
	name := segmentName(segmentNumber(s.segs[len(s.segs)-1]) + 1)
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening segment %s: %w", name, err)
	}
	s.segs = append(s.segs, name)
	s.active = f
	s.activeSize = 0
	return nil
}

// Get returns the stored record and content digest for a fingerprint.
// The read is digest-verifying: the entry's bytes are re-read from the
// segment file, strictly decoded, and the digest recomputed — a store
// never serves content it cannot re-derive. Absent fingerprints return
// ok == false with no error.
func (s *Store) Get(fingerprint string) (rec obs.RunRecord, digest string, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return rec, "", false, fmt.Errorf("store: %s is closed", s.dir)
	}
	l, found := s.index[fingerprint]
	if !found {
		return rec, "", false, nil
	}
	line := make([]byte, l.length)
	if l.seg == len(s.segs)-1 {
		_, err = s.active.ReadAt(line, l.off)
	} else {
		var f *os.File
		f, err = os.Open(filepath.Join(s.dir, s.segs[l.seg]))
		if err == nil {
			_, err = f.ReadAt(line, l.off)
			f.Close()
		}
	}
	if err != nil {
		return rec, "", false, fmt.Errorf("store: reading entry %s: %w", fingerprint, err)
	}
	e, err := decodeEntry(line)
	if err != nil {
		return rec, "", false, fmt.Errorf("store: entry %s: %w", fingerprint, err)
	}
	if e.Fingerprint != fingerprint {
		return rec, "", false, fmt.Errorf("store: index for %s points at entry %s", fingerprint, e.Fingerprint)
	}
	return e.Record, e.Digest, true, nil
}

// Fingerprints returns the live fingerprints in sorted order.
func (s *Store) Fingerprints() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return order.Keys(s.index)
}

// Compact rewrites the live entries — latest per fingerprint, in sorted
// fingerprint order — into a single fresh segment and deletes the old
// ones, reclaiming superseded entries. The new segment is written to a
// temporary file and renamed into place before the old segments go, so
// a crash mid-compaction leaves either the old store or the new one,
// never neither.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.dir)
	}
	name := segmentName(segmentNumber(s.segs[len(s.segs)-1]) + 1)
	tmpPath := filepath.Join(s.dir, name+".tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating compaction segment: %w", err)
	}
	fps := order.Keys(s.index)
	newIndex := make(map[string]loc, len(fps))
	var off int64
	for _, fp := range fps {
		line, err := s.readLocked(fp)
		if err == nil {
			if _, werr := tmp.Write(append(line, '\n')); werr != nil {
				err = werr
			}
		}
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("store: compacting entry %s: %w", fp, err)
		}
		newIndex[fp] = loc{seg: 0, off: off, length: int64(len(line)), digest: s.index[fp].digest}
		off += int64(len(line)) + 1
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: syncing compaction segment: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, name)); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: publishing compaction segment: %w", err)
	}
	old := s.segs
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("store: closing pre-compaction segment: %w", err)
	}
	s.segs = []string{name}
	s.active = tmp
	s.activeSize = off
	s.index = newIndex
	s.superseded = 0
	if _, err := tmp.Seek(off, 0); err != nil {
		return fmt.Errorf("store: seeking compacted segment: %w", err)
	}
	for _, n := range old {
		if err := os.Remove(filepath.Join(s.dir, n)); err != nil {
			return fmt.Errorf("store: removing compacted segment %s: %w", n, err)
		}
	}
	return nil
}

// readLocked returns the raw line bytes of a fingerprint's entry.
// Called with the lock held.
func (s *Store) readLocked(fp string) ([]byte, error) {
	l, ok := s.index[fp]
	if !ok {
		return nil, fmt.Errorf("not indexed")
	}
	line := make([]byte, l.length)
	if l.seg == len(s.segs)-1 {
		if _, err := s.active.ReadAt(line, l.off); err != nil {
			return nil, err
		}
		return line, nil
	}
	f, err := os.Open(filepath.Join(s.dir, s.segs[l.seg]))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := f.ReadAt(line, l.off); err != nil {
		return nil, err
	}
	return line, nil
}

// VerifyAll re-reads and digest-verifies every live entry, returning
// the first failure. The crash-safety suite calls it after simulated
// kills; operators can run it via `serve -verify`.
func (s *Store) VerifyAll() error {
	for _, fp := range s.Fingerprints() {
		if _, _, _, err := s.Get(fp); err != nil {
			return err
		}
	}
	return nil
}

// Close syncs and closes the active segment. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	syncErr := s.active.Sync()
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("store: closing active segment: %w", err)
	}
	if syncErr != nil {
		return fmt.Errorf("store: syncing active segment: %w", syncErr)
	}
	return nil
}

// segmentName renders the fixed-width segment file name, which makes
// lexicographic order equal numeric order.
func segmentName(n int) string { return fmt.Sprintf("seg-%06d.jsonl", n) }

// segmentNumber parses the number out of a segment file name.
func segmentNumber(name string) int {
	var n int
	fmt.Sscanf(name, "seg-%06d.jsonl", &n)
	return n
}

// segmentNames lists dir's segment files in ascending order.
func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && len(name) == len("seg-000000.jsonl") &&
			name[:4] == "seg-" && name[len(name)-6:] == ".jsonl" && segmentNumber(name) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}
