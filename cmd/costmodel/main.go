// Command costmodel regenerates the paper's Tables 1 and 2: the Chien
// cost-model delays of the cube and fat-tree router implementations, in
// nanoseconds.
//
// Usage:
//
//	costmodel [-k radix] [-maxvc n]
//
// Without flags it prints the paper's exact tables (a quaternary tree and
// a bidimensional cube with four virtual channels). -maxvc extends Table 2
// with more virtual-channel variants, illustrating where the routing delay
// overtakes the wire delay.
package main

import (
	"flag"
	"fmt"
	"os"

	"smart/internal/cost"
	"smart/internal/results"
)

func main() {
	k := flag.Int("k", 4, "fat-tree radix for Table 2")
	maxVC := flag.Int("maxvc", 4, "largest virtual-channel count for Table 2 (powers of two from 1)")
	flag.Parse()
	if *k < 2 || *maxVC < 1 {
		fmt.Fprintln(os.Stderr, "costmodel: -k must be >= 2 and -maxvc >= 1")
		os.Exit(2)
	}

	fmt.Println("Table 1: delays of the two routing algorithms for the 16-ary 2-cube (ns)")
	fmt.Println()
	fmt.Print(results.FormatTimings(cost.Table1()))
	fmt.Println()

	fmt.Printf("Table 2: delays of the adaptive algorithm variants for the %d-ary n-tree (ns)\n", *k)
	fmt.Println()
	var rows []cost.Timing
	for v := 1; v <= *maxVC; v *= 2 {
		rows = append(rows, cost.TreeAdaptive(*k, v))
	}
	fmt.Print(results.FormatTimings(rows))
	fmt.Println()
	fmt.Println("The clock cycle of each implementation is the maximum of its three")
	fmt.Println("delays; the simulator equalizes the three stages to one cycle and")
	fmt.Println("recovers absolute time through these figures.")
}
