// Command sweep reproduces the per-network figures of the paper (Figures
// 5 and 6): it sweeps the offered bandwidth for one network/algorithm
// configuration and traffic pattern and prints the Chaos Normal Form
// series — accepted bandwidth and network latency versus offered
// bandwidth, normalized to the uniform-traffic capacity — plus the
// saturation point.
//
// Examples:
//
//	sweep -net tree -vcs 1 -pattern uniform          # one curve of Fig 5a
//	sweep -net cube -alg duato -pattern transpose    # one curve of Fig 6e
//	sweep -net tree -vcs 4 -pattern bitrev -csv out.csv
//
// Observability (internal/obs): -v adds structured run logs, a live
// progress line and a final per-stage engine timing report on stderr;
// -manifest appends one JSONL record per run (config, seed, sample,
// wall time); -cpuprofile/-memprofile/-trace feed go tool pprof/trace.
//
//	sweep -net tree -vcs 2 -quick -v -manifest runs.jsonl -cpuprofile cpu.prof
//
// Resilience (internal/resilience): -checkpoint journals completed runs
// as they finish, Ctrl-C flushes the journal and partial manifest
// instead of dropping them, and -resume skips the journaled runs on the
// next invocation; -watchdog bounds how long a run may go without flit
// progress before it aborts with a stall diagnosis.
//
//	sweep -net cube -alg duato -checkpoint sweep.ckpt            # interruptible
//	sweep -net cube -alg duato -checkpoint sweep.ckpt -resume    # pick up where it left off
//
// Caching (internal/store): -store points at a content-addressed
// result store shared with cmd/batch and cmd/serve. Load points the
// store already holds are replayed (digest-identically) instead of
// re-run, and completed runs are written back:
//
//	sweep -net tree -vcs 2 -store results/    # second invocation is instant
//
// Telemetry (internal/telemetry): -metrics-addr serves live fabric
// state over HTTP while the sweep runs (/metrics in Prometheus text,
// /telemetry.json as JSON); -timeseries journals each run's sampled
// time series and congestion events to a JSONL sidecar next to the
// manifest; -sample-every sets the cadence.
//
//	sweep -net tree -vcs 2 -metrics-addr :9090 -timeseries series.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"smart/internal/core"
	"smart/internal/faults"
	"smart/internal/obs"
	"smart/internal/plot"
	"smart/internal/resilience"
	"smart/internal/results"
	"smart/internal/store"
	"smart/internal/telemetry"
)

func main() {
	var cfg core.Config
	var network, alg, csvPath, manifestPath string
	var step float64
	var quick bool
	obsFlags := obs.AddFlags(flag.CommandLine)
	resFlags := resilience.AddFlags(flag.CommandLine)
	telFlags := telemetry.AddFlags(flag.CommandLine)
	flag.StringVar(&manifestPath, "manifest", "", "append one JSONL run record per load point to this file")
	storeDir := flag.String("store", "", "read-through result store directory: cached load points are replayed instead of re-run, and completed runs are written back")
	flag.StringVar(&network, "net", "tree", "network family: tree or cube")
	flag.IntVar(&cfg.K, "k", 0, "radix")
	flag.IntVar(&cfg.N, "n", 0, "dimension/levels")
	flag.StringVar(&alg, "alg", "", "routing algorithm")
	flag.IntVar(&cfg.VCs, "vcs", 0, "virtual channels")
	flag.StringVar(&cfg.Pattern, "pattern", "uniform", "traffic pattern")
	faultsFlag := flag.String("faults", "", "fault schedule: spec like link:R:P@C1-C2,router:R@C,rand-links:N@C — or a smart/faults/v1 JSONL file")
	flag.StringVar(&cfg.Burst, "burst", "", "bursty injection: mmpp:<dwellOn>:<dwellOff>:<peak>")
	flag.Uint64Var(&cfg.Seed, "seed", 1, "random seed")
	flag.Int64Var(&cfg.Warmup, "warmup", 0, "warm-up cycles (default 2000)")
	flag.Int64Var(&cfg.Horizon, "horizon", 0, "horizon cycles (default 20000)")
	flag.Float64Var(&step, "step", 0.05, "offered-load step (fractions of capacity)")
	flag.BoolVar(&quick, "quick", false, "coarse grid and short horizon for a fast preview")
	flag.StringVar(&csvPath, "csv", "", "also write the series as CSV to this file")
	showPlot := flag.Bool("plot", false, "render the two CNF graphs as ASCII charts")
	selfCheck := flag.Bool("selfcheck", false, "shadow every run with the reference oracle simulator in lockstep (slow; fails at the first divergent cycle)")
	shards := flag.Int("shards", 1, "fabric shards per run (0 = auto from network size and GOMAXPROCS; results are bit-identical)")
	flag.Parse()
	cfg.Network = core.NetworkKind(network)
	cfg.Algorithm = alg
	cfg.WatchdogCycles = resFlags.Watchdog
	var ferr error
	if cfg.Faults, ferr = faults.ResolveFlag(*faultsFlag); ferr != nil {
		fmt.Fprintln(os.Stderr, "sweep:", ferr)
		os.Exit(1)
	}
	if quick {
		step = 0.1
		if cfg.Warmup == 0 {
			cfg.Warmup = 1000
		}
		if cfg.Horizon == 0 {
			cfg.Horizon = 8000
		}
	}

	var loads []float64
	for l := step; l <= 1.0001; l += step {
		loads = append(loads, l)
	}

	stopProf, err := obsFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	ctx, stop := resilience.SignalContext(context.Background())
	defer stop()
	opts := core.Options{Logger: obsFlags.Logger(), Context: ctx, SelfCheck: *selfCheck, Shards: *shards}
	ckpt, err := resFlags.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	if ckpt != nil {
		if resFlags.Resume && ckpt.Len() > 0 {
			fmt.Fprintf(os.Stderr, "sweep: resuming past %d checkpointed runs in %s\n", ckpt.Len(), ckpt.Path())
		}
		opts.Checkpoint = ckpt
	}
	var profiler *obs.StageProfiler
	var progress *obs.Progress
	if obsFlags.Verbose {
		profiler = obs.NewStageProfiler()
		progress = obs.NewProgress(os.Stderr, len(loads), 2*time.Second)
		progress.Start()
		opts.Profiler = profiler
		opts.Progress = progress
	}
	tel, telAddr, telStop, err := telFlags.Open(resFlags.Resume)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	if tel != nil {
		if tel.Server != nil {
			// Grid progress is served even without -v: an unstarted
			// Progress never prints but still snapshots.
			if progress == nil {
				progress = obs.NewProgress(os.Stderr, len(loads), 2*time.Second)
				opts.Progress = progress
			}
			tel.Server.SetProgress(progress)
			fmt.Fprintf(os.Stderr, "sweep: serving telemetry on http://%s/metrics\n", telAddr)
		}
		opts.Telemetry = tel
	}
	if manifestPath != "" {
		mf, err := os.Create(manifestPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		defer mf.Close()
		opts.Manifest = obs.NewManifestWriter(mf)
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		defer st.Close()
		fmt.Fprintf(os.Stderr, "sweep: store %s holds %d results\n", *storeDir, st.Len())
		opts.Store = st
	}

	swept, err := core.SweepWith(cfg, loads, runtime.GOMAXPROCS(0), opts)
	progress.Stop()
	if ckpt != nil {
		if cerr := ckpt.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if terr := telStop(); terr != nil && err == nil {
		err = terr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		if ckpt != nil {
			fmt.Fprintf(os.Stderr, "sweep: checkpoint %s holds %d completed runs; rerun with -resume to continue\n", ckpt.Path(), ckpt.Len())
		}
		os.Exit(1)
	}

	full := swept[0].Config
	fmt.Printf("%s, %s traffic — Chaos Normal Form (both axes normalized to capacity)\n\n", full.Label(), full.Pattern)
	headers, rows := results.CNFRows(swept)
	fmt.Print(results.FormatTable(headers, rows))

	if *showPlot {
		xs := make([]float64, len(swept))
		accepted := make([]float64, len(swept))
		latency := make([]float64, len(swept))
		for i, r := range swept {
			xs[i] = r.Sample.Offered
			accepted[i] = r.Sample.Accepted
			latency[i] = r.Sample.AvgLatency
		}
		for _, ch := range []plot.Chart{
			{Title: "accepted vs offered bandwidth", XLabel: "offered (fraction of capacity)",
				YLabel: "accepted (fraction of capacity)", Width: 60, Height: 14,
				Series: []plot.Series{{Name: full.Label(), X: xs, Y: accepted}}},
			{Title: "network latency vs offered bandwidth", XLabel: "offered (fraction of capacity)",
				YLabel: "latency (cycles)", Width: 60, Height: 14,
				Series: []plot.Series{{Name: full.Label(), X: xs, Y: latency}}},
		} {
			rendered, err := ch.Render()
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				os.Exit(1)
			}
			fmt.Println()
			fmt.Print(rendered)
		}
	}

	series := core.SeriesOf(swept)
	sat, saturated := series.Saturation(0.02)
	fmt.Println()
	if saturated {
		fmt.Printf("saturation at %.0f%% of capacity", 100*sat)
		if stability, ok := series.PostSaturationStability(0.02); ok {
			fmt.Printf("; post-saturation throughput stability %.2f (1.00 = flat)", stability)
		}
		fmt.Println()
	} else {
		fmt.Printf("no saturation up to %.0f%% of capacity\n", 100*sat)
	}

	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := results.WriteCSV(f, headers, rows); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		fmt.Printf("series written to %s\n", csvPath)
	}
	if manifestPath != "" {
		fmt.Printf("run manifest written to %s\n", manifestPath)
	}
	if telFlags.SidecarPath != "" {
		fmt.Printf("time series written to %s\n", telFlags.SidecarPath)
	}

	if profiler != nil {
		fmt.Fprintln(os.Stderr)
		fmt.Fprintln(os.Stderr, "per-stage engine timing (hottest first):")
		fmt.Fprint(os.Stderr, obs.FormatStageReport(profiler.Report()))
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}
