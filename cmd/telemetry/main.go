// Command telemetry inspects JSONL time-series sidecars written by the
// flight recorder (-timeseries on sweep/batch/experiments/netsim,
// schema smart/timeseries/v1).
//
//	telemetry series.jsonl                  # per-run summary table
//	telemetry -events series.jsonl          # congestion-event log
//	telemetry -plot -run 3 series.jsonl     # utilization/throughput over time
//	telemetry -digest a.jsonl b.jsonl       # canonical content digest per file
//	telemetry -check series.jsonl           # validate schema and invariants
//
// The digest is record-order-independent and the records carry no wall
// time, so a kill-and-resume sweep digests identically to an
// uninterrupted one — the sidecar's half of the resume contract, and
// what CI's telemetry smoke job compares.
package main

import (
	"flag"
	"fmt"
	"os"

	"smart/internal/analysis"
	"smart/internal/plot"
	"smart/internal/results"
	"smart/internal/telemetry"
)

func main() {
	digest := flag.Bool("digest", false, "print only the canonical content digest of each sidecar")
	check := flag.Bool("check", false, "validate schema and series invariants, print a one-line verdict")
	events := flag.Bool("events", false, "print each run's congestion-event log")
	doPlot := flag.Bool("plot", false, "render throughput and per-class utilization over time as ASCII charts")
	runIdx := flag.Int("run", -1, "with -plot/-events, select one record by position in the file (default: all)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "telemetry: at least one sidecar file is required")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		recs, err := telemetry.DecodeSidecar(data)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		switch {
		case *digest:
			fmt.Printf("%s  %s\n", telemetry.DigestRecords(recs), path)
		case *check:
			if err := checkRecords(recs); err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
			fmt.Printf("%s: ok — %d records, digest %s\n", path, len(recs), telemetry.DigestRecords(recs))
		default:
			base := 0
			if *runIdx >= 0 {
				base = *runIdx
			}
			summarize(path, selectRecords(recs, *runIdx))
			if *events {
				printEvents(selectRecords(recs, *runIdx), base)
			}
			if *doPlot {
				plotRecords(selectRecords(recs, *runIdx), base)
			}
		}
	}
}

// selectRecords narrows to the -run selection (all records when -1).
func selectRecords(recs []telemetry.Record, idx int) []telemetry.Record {
	if idx < 0 {
		return recs
	}
	if idx >= len(recs) {
		fatal(fmt.Errorf("-run %d: file has %d records", idx, len(recs)))
	}
	return recs[idx : idx+1]
}

// checkRecords enforces the sidecar invariants a correct writer
// guarantees: unique fingerprints, strictly increasing sample cycles,
// class slices sized consistently.
func checkRecords(recs []telemetry.Record) error {
	seen := map[string]bool{}
	for i, rec := range recs {
		if rec.Fingerprint == "" {
			return fmt.Errorf("record %d has no fingerprint", i)
		}
		if seen[rec.Fingerprint] {
			return fmt.Errorf("record %d duplicates fingerprint %s", i, rec.Fingerprint)
		}
		seen[rec.Fingerprint] = true
		if rec.Every <= 0 {
			return fmt.Errorf("record %d has non-positive cadence %d", i, rec.Every)
		}
		if len(rec.ClassNames) != len(rec.ClassLinks) {
			return fmt.Errorf("record %d has %d class names but %d link counts", i, len(rec.ClassNames), len(rec.ClassLinks))
		}
		last := int64(0)
		for j, p := range rec.Points {
			if p.Cycle <= last {
				return fmt.Errorf("record %d sample %d: cycle %d not after %d", i, j, p.Cycle, last)
			}
			last = p.Cycle
			if len(p.ClassFlits) != len(rec.ClassNames) {
				return fmt.Errorf("record %d sample %d: %d class slots, want %d", i, j, len(p.ClassFlits), len(rec.ClassNames))
			}
		}
	}
	return nil
}

func summarize(path string, recs []telemetry.Record) {
	fmt.Printf("%s: %d runs, digest %s\n\n", path, len(recs), telemetry.DigestRecords(recs))
	headers := []string{"run", "configuration", "pattern", "load", "points", "events", "mean del/cyc", "peak in-flight", "peak queued", "hot class"}
	rows := make([][]string, 0, len(recs))
	for i, rec := range recs {
		s, err := analysis.Summarize(rec)
		if err != nil {
			fatal(err)
		}
		hot := "-"
		if s.HotClass != "" {
			hot = fmt.Sprintf("%s %.2f", s.HotClass, s.HotClassUtil)
		}
		status := rec.Label
		if rec.Failure != "" {
			status += " (FAILED)"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", i),
			status,
			rec.Pattern,
			fmt.Sprintf("%.3f", rec.Load),
			fmt.Sprintf("%d", s.Points),
			fmt.Sprintf("%d", s.Events),
			fmt.Sprintf("%.2f", s.MeanDelivery),
			fmt.Sprintf("%d", s.PeakInFlight),
			fmt.Sprintf("%d", s.PeakQueued),
			hot,
		})
	}
	fmt.Print(results.FormatTable(headers, rows))
}

func printEvents(recs []telemetry.Record, base int) {
	for off, rec := range recs {
		i := base + off
		if len(rec.Events) == 0 {
			continue
		}
		fmt.Printf("\nrun %d (%s, %s, load %.3f) events:\n", i, rec.Label, rec.Pattern, rec.Load)
		for _, ev := range rec.Events {
			line := fmt.Sprintf("  cycle %-8d %-17s", ev.Cycle, ev.Kind)
			if ev.Class != "" {
				line += " " + ev.Class
			}
			if ev.Detail != "" {
				line += "  " + ev.Detail
			}
			fmt.Println(line)
		}
		if rec.DroppedEvents > 0 {
			fmt.Printf("  (+%d events dropped)\n", rec.DroppedEvents)
		}
	}
}

func plotRecords(recs []telemetry.Record, base int) {
	for off, rec := range recs {
		i := base + off
		rates, err := analysis.Rates(rec)
		if err != nil {
			fatal(err)
		}
		if len(rates) == 0 {
			continue
		}
		xs := make([]float64, len(rates))
		del := make([]float64, len(rates))
		inj := make([]float64, len(rates))
		for j, rp := range rates {
			xs[j] = float64(rp.Cycle)
			del[j] = rp.DeliveryRate
			inj[j] = rp.InjectionRate
		}
		charts := []plot.Chart{{
			Title:  fmt.Sprintf("run %d: flit rates over time (%s, %s, load %.3f)", i, rec.Label, rec.Pattern, rec.Load),
			XLabel: "cycle", YLabel: "flits/cycle", Width: 64, Height: 12,
			Series: []plot.Series{{Name: "delivered", X: xs, Y: del}, {Name: "injected", X: xs, Y: inj}},
		}}
		if len(rec.ClassNames) > 0 {
			util := plot.Chart{
				Title:  fmt.Sprintf("run %d: channel-class utilization over time", i),
				XLabel: "cycle", YLabel: "utilization", Width: 64, Height: 12,
			}
			for c, name := range rec.ClassNames {
				if rec.ClassLinks[c] == 0 {
					continue
				}
				ys := make([]float64, len(rates))
				for j, rp := range rates {
					if c < len(rp.ClassUtil) {
						ys[j] = rp.ClassUtil[c]
					}
				}
				util.Series = append(util.Series, plot.Series{Name: name, X: xs, Y: ys})
			}
			charts = append(charts, util)
		}
		for _, ch := range charts {
			rendered, err := ch.Render()
			if err != nil {
				fatal(err)
			}
			fmt.Println()
			fmt.Print(rendered)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "telemetry:", err)
	os.Exit(1)
}
