// Command manifest inspects JSONL run manifests (smart/run/v1 through
// v3) and fault schedules (smart/faults/v1).
//
//	manifest runs.jsonl              # per-file summary: records, failures, batches
//	manifest faults.jsonl            # fault-schedule summary: events, canonical spec
//	manifest -digest a.jsonl b.jsonl # canonical content digest per file
//
// The digest is order- and wall-time-independent (see obs.Digest), so
// it is the right equality for the checkpoint/resume contract: an
// interrupted sweep resumed with -resume digests identically to an
// uninterrupted reference run. CI's resume smoke job relies on exactly
// this comparison. A fault schedule's digest hashes its canonical spec,
// so re-encoded schedules with the same semantics digest equal.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"smart/internal/faults"
	"smart/internal/obs"
	"smart/internal/order"
)

func main() {
	digest := flag.Bool("digest", false, "print only the canonical content digest of each manifest")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "manifest: at least one manifest file is required")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		if isFaultsFile(data) {
			sched, err := faults.Decode(bytes.NewReader(data))
			if err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
			if *digest {
				sum := sha256.Sum256([]byte(sched.Canonical()))
				fmt.Printf("%s  %s\n", hex.EncodeToString(sum[:]), path)
				continue
			}
			summarizeFaults(path, sched)
			continue
		}
		recs, err := obs.DecodeManifest(bytes.NewReader(data))
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		if *digest {
			fmt.Printf("%s  %s\n", obs.Digest(recs), path)
			continue
		}
		summarize(path, recs)
	}
}

// isFaultsFile sniffs the header line of a smart/faults/v1 schedule.
func isFaultsFile(data []byte) bool {
	line := data
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		line = data[:i]
	}
	return bytes.Contains(line, []byte(faults.Schema))
}

func summarizeFaults(path string, sched faults.Schedule) {
	downs, ups := 0, 0
	for _, ev := range sched {
		if ev.Kind == faults.LinkDown || ev.Kind == faults.RouterDown {
			downs++
		} else {
			ups++
		}
	}
	fmt.Printf("%s: fault schedule (%s), %d events (%d down, %d up)\n", path, faults.Schema, len(sched), downs, ups)
	if spec := sched.Canonical(); spec != "" {
		fmt.Printf("  canonical: %s\n", spec)
	}
}

func summarize(path string, recs []obs.RunRecord) {
	completed, failed, faulted := 0, 0, 0
	batches := map[string]int{}
	for _, rec := range recs {
		if rec.Failure != "" {
			failed++
		} else {
			completed++
		}
		if rec.Faults != "" {
			faulted++
		}
		batches[rec.Batch]++
	}
	fmt.Printf("%s: %d records (%d completed, %d failed), digest %s\n", path, len(recs), completed, failed, obs.Digest(recs))
	if faulted > 0 {
		fmt.Printf("  %d records carry a fault schedule\n", faulted)
	}
	for _, name := range order.Keys(batches) {
		label := name
		if label == "" {
			label = "(unbatched)"
		}
		fmt.Printf("  %-40s %d records\n", label, batches[name])
	}
	for _, rec := range recs {
		if rec.Failure != "" {
			fmt.Printf("  FAILED %s index %d (%s): %s\n", rec.Label, rec.Index, rec.Fingerprint, rec.Failure)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "manifest:", err)
	os.Exit(1)
}
