// Command manifest inspects JSONL run manifests (smart/run/v1 and v2).
//
//	manifest runs.jsonl              # per-file summary: records, failures, batches
//	manifest -digest a.jsonl b.jsonl # canonical content digest per file
//
// The digest is order- and wall-time-independent (see obs.Digest), so
// it is the right equality for the checkpoint/resume contract: an
// interrupted sweep resumed with -resume digests identically to an
// uninterrupted reference run. CI's resume smoke job relies on exactly
// this comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"smart/internal/obs"
	"smart/internal/order"
)

func main() {
	digest := flag.Bool("digest", false, "print only the canonical content digest of each manifest")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "manifest: at least one manifest file is required")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		recs, err := obs.DecodeManifest(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		if *digest {
			fmt.Printf("%s  %s\n", obs.Digest(recs), path)
			continue
		}
		summarize(path, recs)
	}
}

func summarize(path string, recs []obs.RunRecord) {
	completed, failed := 0, 0
	batches := map[string]int{}
	for _, rec := range recs {
		if rec.Failure != "" {
			failed++
		} else {
			completed++
		}
		batches[rec.Batch]++
	}
	fmt.Printf("%s: %d records (%d completed, %d failed), digest %s\n", path, len(recs), completed, failed, obs.Digest(recs))
	for _, name := range order.Keys(batches) {
		label := name
		if label == "" {
			label = "(unbatched)"
		}
		fmt.Printf("  %-40s %d records\n", label, batches[name])
	}
	for _, rec := range recs {
		if rec.Failure != "" {
			fmt.Printf("  FAILED %s index %d (%s): %s\n", rec.Label, rec.Index, rec.Fingerprint, rec.Failure)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "manifest:", err)
	os.Exit(1)
}
