// Command batch runs a declarative JSON study: a named list of
// configurations, each a core.Config with unset fields taking the paper's
// defaults. Results are printed as a table and optionally dumped as CSV.
//
//	batch -config study.json [-csv results.csv] [-workers 4]
//	batch -scaffold > study.json    # emit a template to start from
//
// Observability (internal/obs): -v adds structured run logs, a live
// progress line and a final per-stage engine timing report on stderr;
// -manifest appends one JSONL record per configuration; and
// -cpuprofile/-memprofile/-trace feed go tool pprof/trace.
//
// Resilience (internal/resilience): a failing or panicking config no
// longer aborts the study — every failure is reported at the end;
// -checkpoint journals completed configs, Ctrl-C flushes the journal
// and partial manifest, -resume skips journaled configs on the next
// invocation, and -watchdog aborts deadlocked configs with a stall
// diagnosis (configs that set WatchdogCycles keep their own budget).
//
// Caching (internal/store): -store points at a content-addressed
// result store shared with cmd/sweep and cmd/serve; configs the store
// holds are replayed instead of re-run, and completed runs are
// written back.
//
// Telemetry (internal/telemetry): -metrics-addr serves live fabric
// state over HTTP while the study runs; -timeseries journals each
// config's sampled time series and congestion events to a JSONL
// sidecar; -sample-every sets the cadence.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"smart/internal/core"
	"smart/internal/faults"
	"smart/internal/obs"
	"smart/internal/resilience"
	"smart/internal/results"
	"smart/internal/store"
	"smart/internal/telemetry"
)

func main() {
	obsFlags := obs.AddFlags(flag.CommandLine)
	resFlags := resilience.AddFlags(flag.CommandLine)
	telFlags := telemetry.AddFlags(flag.CommandLine)
	configPath := flag.String("config", "", "path to the JSON batch description")
	csvPath := flag.String("csv", "", "also write results as CSV")
	manifestPath := flag.String("manifest", "", "append one JSONL run record per configuration to this file")
	storeDir := flag.String("store", "", "read-through result store directory: cached configs are replayed instead of re-run, and completed runs are written back")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel simulations")
	scaffold := flag.Bool("scaffold", false, "print a template batch file and exit")
	shards := flag.Int("shards", 1, "fabric shards per run (0 = auto from network size and GOMAXPROCS; results are bit-identical)")
	faultsFlag := flag.String("faults", "", "fault schedule (spec or smart/faults/v1 JSONL file) for configs that set none")
	burstFlag := flag.String("burst", "", "bursty injection (mmpp:<dwellOn>:<dwellOff>:<peak>) for configs that set none")
	flag.Parse()

	if *scaffold {
		template := core.Batch{
			Name: "example-study",
			Configs: []core.Config{
				{Network: core.NetworkTree, Algorithm: core.AlgAdaptive, VCs: 2, Pattern: core.PatternUniform, Load: 0.5},
				{Network: core.NetworkCube, Algorithm: core.AlgDuato, VCs: 4, Pattern: core.PatternUniform, Load: 0.5},
			},
		}
		if err := core.EncodeBatch(os.Stdout, template); err != nil {
			fmt.Fprintln(os.Stderr, "batch:", err)
			os.Exit(1)
		}
		return
	}
	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "batch: -config is required (or -scaffold for a template)")
		os.Exit(2)
	}
	file, err := os.Open(*configPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "batch:", err)
		os.Exit(1)
	}
	b, err := core.DecodeBatch(file)
	file.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "batch:", err)
		os.Exit(1)
	}
	faultsSpec, err := faults.ResolveFlag(*faultsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "batch:", err)
		os.Exit(1)
	}
	for i := range b.Configs {
		if b.Configs[i].WatchdogCycles == 0 {
			b.Configs[i].WatchdogCycles = resFlags.Watchdog
		}
		if b.Configs[i].Faults == "" {
			b.Configs[i].Faults = faultsSpec
		}
		if b.Configs[i].Burst == "" {
			b.Configs[i].Burst = *burstFlag
		}
	}

	stopProf, err := obsFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "batch:", err)
		os.Exit(1)
	}
	ctx, stop := resilience.SignalContext(context.Background())
	defer stop()
	opts := core.Options{Logger: obsFlags.Logger(), Context: ctx, Shards: *shards}
	ckpt, err := resFlags.Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, "batch:", err)
		os.Exit(1)
	}
	if ckpt != nil {
		if resFlags.Resume && ckpt.Len() > 0 {
			fmt.Fprintf(os.Stderr, "batch: resuming past %d checkpointed runs in %s\n", ckpt.Len(), ckpt.Path())
		}
		opts.Checkpoint = ckpt
	}
	var profiler *obs.StageProfiler
	var progress *obs.Progress
	if obsFlags.Verbose {
		profiler = obs.NewStageProfiler()
		progress = obs.NewProgress(os.Stderr, len(b.Configs), 2*time.Second)
		progress.Start()
		opts.Profiler = profiler
		opts.Progress = progress
	}
	tel, telAddr, telStop, err := telFlags.Open(resFlags.Resume)
	if err != nil {
		fmt.Fprintln(os.Stderr, "batch:", err)
		os.Exit(1)
	}
	if tel != nil {
		if tel.Server != nil {
			// Grid progress is served even without -v: an unstarted
			// Progress never prints but still snapshots.
			if progress == nil {
				progress = obs.NewProgress(os.Stderr, len(b.Configs), 2*time.Second)
				opts.Progress = progress
			}
			tel.Server.SetProgress(progress)
			fmt.Fprintf(os.Stderr, "batch: serving telemetry on http://%s/metrics\n", telAddr)
		}
		opts.Telemetry = tel
	}
	if *manifestPath != "" {
		mf, err := os.Create(*manifestPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "batch:", err)
			os.Exit(1)
		}
		defer mf.Close()
		opts.Manifest = obs.NewManifestWriter(mf)
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "batch:", err)
			os.Exit(1)
		}
		defer st.Close()
		fmt.Fprintf(os.Stderr, "batch: store %s holds %d results\n", *storeDir, st.Len())
		opts.Store = st
	}

	res, err := b.RunWith(*workers, opts)
	progress.Stop()
	if ckpt != nil {
		if cerr := ckpt.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if terr := telStop(); terr != nil && err == nil {
		err = terr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "batch:", err)
		if ckpt != nil {
			fmt.Fprintf(os.Stderr, "batch: checkpoint %s holds %d completed runs; rerun with -resume to continue\n", ckpt.Path(), ckpt.Len())
		}
		os.Exit(1)
	}

	fmt.Printf("batch %q: %d simulations\n\n", b.Name, len(res))
	headers := []string{"configuration", "pattern", "offered", "accepted", "latency cycles", "latency ns", "bits/ns"}
	rows := make([][]string, len(res))
	for i, r := range res {
		rows[i] = []string{
			r.Config.Label(),
			r.Config.Pattern,
			fmt.Sprintf("%.3f", r.Sample.Offered),
			fmt.Sprintf("%.4f", r.Sample.Accepted),
			fmt.Sprintf("%.1f", r.Sample.AvgLatency),
			fmt.Sprintf("%.0f", r.LatencyNS),
			fmt.Sprintf("%.1f", r.AcceptedBitsNS),
		}
	}
	fmt.Print(results.FormatTable(headers, rows))

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "batch:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := results.WriteCSV(f, headers, rows); err != nil {
			fmt.Fprintln(os.Stderr, "batch:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
	if *manifestPath != "" {
		fmt.Printf("\nrun manifest written to %s\n", *manifestPath)
	}
	if telFlags.SidecarPath != "" {
		fmt.Printf("\ntime series written to %s\n", telFlags.SidecarPath)
	}

	if profiler != nil {
		fmt.Fprintln(os.Stderr)
		fmt.Fprintln(os.Stderr, "per-stage engine timing (hottest first):")
		fmt.Fprint(os.Stderr, obs.FormatStageReport(profiler.Report()))
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "batch:", err)
		os.Exit(1)
	}
}
