package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"smart/internal/core"
	"smart/internal/results"
)

// degradedScenarios are the overlays the degraded-operation study
// applies on top of an otherwise clean configuration. The fault clause
// is seeded-random, so it expands deterministically from each run's
// Config.Fingerprint: the same configuration always loses the same six
// links, and the study stays content-addressable.
var degradedScenarios = []struct {
	label  string
	faults string
	burst  string
}{
	{"clean", "", ""},
	{"faulted", "rand-links:6@1000", ""},
	{"bursty", "", "mmpp:200:600:2.5"},
	{"faulted+bursty", "rand-links:6@1000", "mmpp:200:600:2.5"},
}

// runDegraded sweeps the fault-tolerant configurations — the Duato
// torus and the adaptive fat-tree — under each degraded scenario and
// reports the saturation shift. These are the numbers behind README's
// degraded-saturation table. Deterministic (dimension-order) cube
// routing is excluded on purpose: it is fault-oblivious by design and
// wedges at the first cut link on its path; the watchdog names the
// blocked header instead (see the seeded-fault regression test).
func runDegraded(loads []float64, warmup, horizon int64, seed uint64, csvDir string, opts core.Options, elapsed func() time.Duration) {
	configs := []core.Config{
		{Network: core.NetworkCube, K: 8, N: 2, Algorithm: core.AlgDuato, VCs: 4},
		{Network: core.NetworkTree, K: 4, N: 4, Algorithm: core.AlgAdaptive, VCs: 4},
	}
	fmt.Println("== Degraded operation: saturation under faults and bursty injection ==")
	fmt.Println()
	headers := []string{"configuration", "scenario", "saturation", "bits/ns at saturation", "pre-sat latency ns"}
	var rows [][]string
	for _, base := range configs {
		for _, sc := range degradedScenarios {
			cfg := base
			cfg.Pattern = "uniform"
			cfg.Seed = seed
			cfg.Warmup, cfg.Horizon = warmup, horizon
			cfg.Faults, cfg.Burst = sc.faults, sc.burst
			o := opts
			o.Batch = "degraded/" + cfg.Label() + "/" + sc.label
			swept, err := core.SweepWith(cfg, loads, runtime.GOMAXPROCS(0), o)
			if err != nil {
				fatal(err)
			}
			row := results.Summarize(sc.label, swept, 0.02)
			sat := fmt.Sprintf("%.2f", row.SaturationFrac)
			if !row.Saturated {
				sat = ">" + sat
			}
			rows = append(rows, []string{
				swept[0].Config.Label(), sc.label, sat,
				fmt.Sprintf("%.0f", row.SaturationBitsNS),
				fmt.Sprintf("%.0f", row.PreSatLatencyNS),
			})
			fmt.Fprintf(os.Stderr, "degraded %-22s %-14s (%s elapsed)\n",
				swept[0].Config.Label(), sc.label, elapsed().Round(time.Second))
		}
	}
	fmt.Print(results.FormatTable(headers, rows))
	writeCSV(csvDir, "degraded-saturation.csv", headers, rows)
	fmt.Println()
}
