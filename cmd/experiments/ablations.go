package main

import (
	"fmt"
	"runtime"

	"smart/internal/core"
	"smart/internal/results"
)

// runAblations executes the extension studies DESIGN.md commits to: the
// design-choice sensitivities the paper discusses qualitatively but does
// not plot.
func runAblations(loads []float64, warmup, horizon int64, seed uint64, csvDir string) {
	fmt.Println("== Ablation: lane buffer depth (tree, 2 VCs, uniform) ==")
	fmt.Println()
	fmt.Println("The paper fixes input and output lanes at 4 flits; deeper lanes absorb")
	fmt.Println("more blocking in the descending phase.")
	fmt.Println()
	{
		var labels []string
		var sweeps [][]core.Result
		for _, depth := range []int{2, 4, 8} {
			cfg := core.Config{Network: core.NetworkTree, Algorithm: core.AlgAdaptive, VCs: 2,
				BufDepth: depth, Seed: seed, Warmup: warmup, Horizon: horizon}
			swept, err := core.Sweep(cfg, loads, runtime.GOMAXPROCS(0))
			if err != nil {
				fatal(err)
			}
			labels = append(labels, fmt.Sprintf("%d-flit lanes", depth))
			sweeps = append(sweeps, swept)
		}
		h, r, err := results.MultiSeries(labels, sweeps, func(res core.Result) float64 { return res.Sample.Accepted }, "offered")
		if err != nil {
			fatal(err)
		}
		fmt.Print(results.FormatTable(h, r))
		writeCSV(csvDir, "ablation-bufdepth.csv", h, r)
		fmt.Println()
	}

	fmt.Println("== Ablation: packet size (cube duato, uniform) ==")
	fmt.Println()
	fmt.Println("Longer worms raise the tail latency and deepen blocking trees; the")
	fmt.Println("paper's 64-byte packets sit between the extremes.")
	fmt.Println()
	{
		var labels []string
		var sweeps [][]core.Result
		for _, bytes := range []int{16, 64, 256} {
			cfg := core.Config{Network: core.NetworkCube, Algorithm: core.AlgDuato, VCs: 4,
				PacketBytes: bytes, Seed: seed, Warmup: warmup, Horizon: horizon}
			swept, err := core.Sweep(cfg, loads, runtime.GOMAXPROCS(0))
			if err != nil {
				fatal(err)
			}
			labels = append(labels, fmt.Sprintf("%dB packets", bytes))
			sweeps = append(sweeps, swept)
		}
		h, r, err := results.MultiSeries(labels, sweeps, func(res core.Result) float64 { return res.Sample.Accepted }, "offered")
		if err != nil {
			fatal(err)
		}
		fmt.Println("accepted bandwidth (fraction of capacity):")
		fmt.Print(results.FormatTable(h, r))
		writeCSV(csvDir, "ablation-packetsize-accepted.csv", h, r)
		h, r, err = results.MultiSeries(labels, sweeps, func(res core.Result) float64 { return res.Sample.AvgLatency }, "offered")
		if err != nil {
			fatal(err)
		}
		fmt.Println("network latency (cycles):")
		fmt.Print(results.FormatTable(h, r))
		writeCSV(csvDir, "ablation-packetsize-latency.csv", h, r)
		fmt.Println()
	}

	fmt.Println("== Ablation: source throttling (cube duato, uniform) ==")
	fmt.Println()
	fmt.Println("The paper's single injection channel keeps throughput stable above")
	fmt.Println("saturation (§3); multiple injection lanes let a node push several")
	fmt.Println("worms concurrently.")
	fmt.Println()
	{
		var labels []string
		var sweeps [][]core.Result
		for _, lanes := range []int{1, 2, 4} {
			cfg := core.Config{Network: core.NetworkCube, Algorithm: core.AlgDuato, VCs: 4,
				InjLanes: lanes, Seed: seed, Warmup: warmup, Horizon: horizon}
			swept, err := core.Sweep(cfg, loads, runtime.GOMAXPROCS(0))
			if err != nil {
				fatal(err)
			}
			labels = append(labels, fmt.Sprintf("%d inj lanes", lanes))
			sweeps = append(sweeps, swept)
		}
		h, r, err := results.MultiSeries(labels, sweeps, func(res core.Result) float64 { return res.Sample.Accepted }, "offered")
		if err != nil {
			fatal(err)
		}
		fmt.Print(results.FormatTable(h, r))
		writeCSV(csvDir, "ablation-injlanes.csv", h, r)
		fmt.Println()
	}

	fmt.Println("== Ablation: fat-tree ascent policy (tree, 2 VCs, uniform) ==")
	fmt.Println()
	fmt.Println("The paper's algorithm picks the least-loaded up link; round-robin")
	fmt.Println("ignores load, digit-aligned is fully oblivious (optimal for the")
	fmt.Println("congestion-free permutations, blind under random traffic).")
	fmt.Println()
	{
		var labels []string
		var sweeps [][]core.Result
		for _, ascent := range []string{"least-loaded", "round-robin", "digit-aligned"} {
			cfg := core.Config{Network: core.NetworkTree, Algorithm: core.AlgAdaptive, VCs: 2,
				TreeAscent: ascent, Seed: seed, Warmup: warmup, Horizon: horizon}
			swept, err := core.Sweep(cfg, loads, runtime.GOMAXPROCS(0))
			if err != nil {
				fatal(err)
			}
			labels = append(labels, ascent)
			sweeps = append(sweeps, swept)
		}
		h, r, err := results.MultiSeries(labels, sweeps, func(res core.Result) float64 { return res.Sample.Accepted }, "offered")
		if err != nil {
			fatal(err)
		}
		fmt.Print(results.FormatTable(h, r))
		writeCSV(csvDir, "ablation-ascent.csv", h, r)
		fmt.Println()
	}

	fmt.Println("== Ablation: switching mode (cube duato, uniform) ==")
	fmt.Println()
	fmt.Println("Wormhole (4-flit lanes) vs virtual cut-through (16-flit lanes) vs")
	fmt.Println("store-and-forward (16-flit lanes, whole-packet gate): SAF pays the")
	fmt.Println("distance-times-length latency product wormhole switching avoids.")
	fmt.Println()
	{
		type mode struct {
			label string
			cfg   core.Config
		}
		modes := []mode{
			{"wormhole", core.Config{Network: core.NetworkCube, Algorithm: core.AlgDuato, VCs: 4}},
			{"cut-through", core.Config{Network: core.NetworkCube, Algorithm: core.AlgDuato, VCs: 4, BufDepth: 16}},
			{"store-and-forward", core.Config{Network: core.NetworkCube, Algorithm: core.AlgDuato, VCs: 4, BufDepth: 16, StoreAndForward: true}},
		}
		var labels []string
		var sweeps [][]core.Result
		for _, m := range modes {
			m.cfg.Seed = seed
			m.cfg.Warmup, m.cfg.Horizon = warmup, horizon
			swept, err := core.Sweep(m.cfg, loads, runtime.GOMAXPROCS(0))
			if err != nil {
				fatal(err)
			}
			labels = append(labels, m.label)
			sweeps = append(sweeps, swept)
		}
		h, r, err := results.MultiSeries(labels, sweeps, func(res core.Result) float64 { return res.Sample.Accepted }, "offered")
		if err != nil {
			fatal(err)
		}
		fmt.Println("accepted bandwidth (fraction of capacity):")
		fmt.Print(results.FormatTable(h, r))
		h, r, err = results.MultiSeries(labels, sweeps, func(res core.Result) float64 { return res.Sample.AvgLatency }, "offered")
		if err != nil {
			fatal(err)
		}
		fmt.Println("network latency (cycles):")
		fmt.Print(results.FormatTable(h, r))
		writeCSV(csvDir, "ablation-switching.csv", h, r)
		fmt.Println()
	}

	fmt.Println("== Ablation: routing-delay stretch (cube duato, uniform) ==")
	fmt.Println()
	fmt.Println("De-equalizing the pipeline: one header routed per switch every R")
	fmt.Println("cycles emulates a slower routing decision than the cost model's")
	fmt.Println("single cycle.")
	fmt.Println()
	{
		var labels []string
		var sweeps [][]core.Result
		for _, every := range []int{1, 2, 4} {
			cfg := core.Config{Network: core.NetworkCube, Algorithm: core.AlgDuato, VCs: 4,
				RouteEvery: every, Seed: seed, Warmup: warmup, Horizon: horizon}
			swept, err := core.Sweep(cfg, loads, runtime.GOMAXPROCS(0))
			if err != nil {
				fatal(err)
			}
			labels = append(labels, fmt.Sprintf("route every %d", every))
			sweeps = append(sweeps, swept)
		}
		h, r, err := results.MultiSeries(labels, sweeps, func(res core.Result) float64 { return res.Sample.Accepted }, "offered")
		if err != nil {
			fatal(err)
		}
		fmt.Print(results.FormatTable(h, r))
		writeCSV(csvDir, "ablation-routeevery.csv", h, r)
		fmt.Println()
	}

	fmt.Println("== Ablation: torus vs mesh (duato, uniform) ==")
	fmt.Println()
	fmt.Println("Removing the wrap-around links halves the bisection; offered load is")
	fmt.Println("normalized to each network's own capacity bound, so equal fractions")
	fmt.Println("hide a 2x difference in absolute traffic.")
	fmt.Println()
	{
		var labels []string
		var sweeps [][]core.Result
		for _, network := range []core.NetworkKind{core.NetworkCube, core.NetworkMesh} {
			cfg := core.Config{Network: network, Algorithm: core.AlgDuato, VCs: 4,
				Seed: seed, Warmup: warmup, Horizon: horizon}
			swept, err := core.Sweep(cfg, loads, runtime.GOMAXPROCS(0))
			if err != nil {
				fatal(err)
			}
			labels = append(labels, swept[0].Config.Label())
			sweeps = append(sweeps, swept)
		}
		h, r, err := results.MultiSeries(labels, sweeps, func(res core.Result) float64 { return res.Sample.Accepted }, "offered")
		if err != nil {
			fatal(err)
		}
		fmt.Println("accepted bandwidth (fraction of each network's own capacity):")
		fmt.Print(results.FormatTable(h, r))
		h, r, err = results.MultiSeries(labels, sweeps, func(res core.Result) float64 { return res.AcceptedBitsNS }, "offered")
		if err != nil {
			fatal(err)
		}
		fmt.Println("accepted traffic (bits/ns, absolute):")
		fmt.Print(results.FormatTable(h, r))
		writeCSV(csvDir, "ablation-mesh.csv", h, r)
		fmt.Println()
	}

	fmt.Println("== Extension: diminishing returns beyond 4 virtual channels (tree, uniform) ==")
	fmt.Println()
	fmt.Println("The paper predicts (§11) that past four virtual channels the routing")
	fmt.Println("delay overtakes the wire delay, so extra lanes buy cycles-domain")
	fmt.Println("throughput but lose absolute bits/ns. Eight lanes put the clock at")
	fmt.Println("T_routing = 11.66 ns against the 4-lane 10.84 ns.")
	fmt.Println()
	{
		var labels []string
		var sweeps [][]core.Result
		for _, vcs := range []int{2, 4, 8} {
			cfg := core.Config{Network: core.NetworkTree, Algorithm: core.AlgAdaptive, VCs: vcs,
				Seed: seed, Warmup: warmup, Horizon: horizon}
			swept, err := core.Sweep(cfg, loads, runtime.GOMAXPROCS(0))
			if err != nil {
				fatal(err)
			}
			labels = append(labels, fmt.Sprintf("%d vc", vcs))
			sweeps = append(sweeps, swept)
		}
		h, r, err := results.MultiSeries(labels, sweeps, func(res core.Result) float64 { return res.Sample.Accepted }, "offered")
		if err != nil {
			fatal(err)
		}
		fmt.Println("accepted bandwidth (fraction of capacity):")
		fmt.Print(results.FormatTable(h, r))
		h, r, err = results.MultiSeries(labels, sweeps, func(res core.Result) float64 { return res.AcceptedBitsNS }, "offered")
		if err != nil {
			fatal(err)
		}
		fmt.Println("accepted traffic (bits/ns, absolute):")
		fmt.Print(results.FormatTable(h, r))
		writeCSV(csvDir, "extension-8vc.csv", h, r)
		fmt.Println()
	}

	fmt.Println("== Extension: hypercubes again? (2-ary 8-cube vs 16-ary 2-cube) ==")
	fmt.Println()
	fmt.Println("The paper cites Duato & Malumbres' question of whether hypercubes beat")
	fmt.Println("low-dimensional tori once router complexity is charged. The binary")
	fmt.Println("8-cube pays a 65-port crossbar and F = 18 routing freedom under the")
	fmt.Println("same cost model; both networks have 256 nodes.")
	fmt.Println()
	{
		type study struct {
			label string
			cfg   core.Config
		}
		studies := []study{
			{"torus duato", core.Config{Network: core.NetworkCube, Algorithm: core.AlgDuato, VCs: 4}},
			{"hypercube duato", core.Config{Network: core.NetworkCube, K: 2, N: 8, Algorithm: core.AlgDuato, VCs: 4}},
			{"hypercube det", core.Config{Network: core.NetworkCube, K: 2, N: 8, Algorithm: core.AlgDeterministic, VCs: 4}},
		}
		var labels []string
		var sweeps [][]core.Result
		for _, s := range studies {
			s.cfg.Seed = seed
			s.cfg.Warmup, s.cfg.Horizon = warmup, horizon
			swept, err := core.Sweep(s.cfg, loads, runtime.GOMAXPROCS(0))
			if err != nil {
				fatal(err)
			}
			labels = append(labels, s.label)
			sweeps = append(sweeps, swept)
		}
		h, r, err := results.MultiSeries(labels, sweeps, func(res core.Result) float64 { return res.Sample.Accepted }, "offered")
		if err != nil {
			fatal(err)
		}
		fmt.Println("accepted bandwidth (fraction of each network's own capacity):")
		fmt.Print(results.FormatTable(h, r))
		h, r, err = results.MultiSeries(labels, sweeps, func(res core.Result) float64 { return res.AcceptedBitsNS }, "offered")
		if err != nil {
			fatal(err)
		}
		fmt.Println("accepted traffic (bits/ns, absolute after cost-model filtering):")
		fmt.Print(results.FormatTable(h, r))
		writeCSV(csvDir, "extension-hypercube.csv", h, r)
		fmt.Println()
	}

	fmt.Println("== Extension: additional traffic patterns ==")
	fmt.Println()
	fmt.Println("Tornado on the cube (adversarial ring pressure), perfect shuffle and")
	fmt.Println("a 5% hotspot on both networks.")
	fmt.Println()
	{
		type study struct {
			label string
			cfg   core.Config
		}
		studies := []study{
			{"cube duato / tornado", core.Config{Network: core.NetworkCube, Algorithm: core.AlgDuato, VCs: 4, Pattern: core.PatternTornado}},
			{"cube det / tornado", core.Config{Network: core.NetworkCube, Algorithm: core.AlgDeterministic, VCs: 4, Pattern: core.PatternTornado}},
			{"cube duato / shuffle", core.Config{Network: core.NetworkCube, Algorithm: core.AlgDuato, VCs: 4, Pattern: core.PatternShuffle}},
			{"tree 4vc / shuffle", core.Config{Network: core.NetworkTree, Algorithm: core.AlgAdaptive, VCs: 4, Pattern: core.PatternShuffle}},
			{"cube duato / hotspot", core.Config{Network: core.NetworkCube, Algorithm: core.AlgDuato, VCs: 4, Pattern: core.PatternHotspot}},
			{"tree 4vc / hotspot", core.Config{Network: core.NetworkTree, Algorithm: core.AlgAdaptive, VCs: 4, Pattern: core.PatternHotspot}},
		}
		var labels []string
		var sweeps [][]core.Result
		for _, s := range studies {
			s.cfg.Seed = seed
			s.cfg.Warmup, s.cfg.Horizon = warmup, horizon
			swept, err := core.Sweep(s.cfg, loads, runtime.GOMAXPROCS(0))
			if err != nil {
				fatal(err)
			}
			labels = append(labels, s.label)
			sweeps = append(sweeps, swept)
		}
		h, r, err := results.MultiSeries(labels, sweeps, func(res core.Result) float64 { return res.Sample.Accepted }, "offered")
		if err != nil {
			fatal(err)
		}
		fmt.Print(results.FormatTable(h, r))
		writeCSV(csvDir, "extension-patterns.csv", h, r)
		fmt.Println()
	}
}
