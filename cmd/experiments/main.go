// Command experiments reproduces the paper's complete evaluation: Tables
// 1 and 2 (router delays), Figures 5 and 6 (Chaos Normal Form curves of
// the 4-ary 4-tree and the 16-ary 2-cube under uniform, complement,
// transpose and bit-reversal traffic), Figure 7 (the absolute-unit
// comparison), and a paper-versus-measured scorecard of every saturation
// point the text quotes. With -ablations it also runs the extension
// studies (buffer depth, packet size, injection lanes, extra patterns).
//
// The full grid is 4 patterns x 5 configurations x 20 offered loads at
// the paper's 20000-cycle horizon; use -quick for a coarse preview.
//
// Output is a self-contained text report on stdout (tee it to a file);
// -csvdir additionally dumps every series as CSV for plotting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"smart/internal/core"
	"smart/internal/cost"
	"smart/internal/faults"
	"smart/internal/obs"
	"smart/internal/resilience"
	"smart/internal/results"
	"smart/internal/telemetry"
)

// ckpt is the completed-run journal (-checkpoint); fatal reports it so
// an interrupted or failed grid can be resumed instead of recomputed.
var ckpt *resilience.Checkpoint

// paperSaturation records the saturation points the paper's text quotes,
// as fractions of capacity, keyed by pattern then configuration label.
var paperSaturation = map[string]map[string]float64{
	"uniform":    {"cube deterministic": 0.60, "cube duato": 0.80, "tree adaptive-1vc": 0.36, "tree adaptive-2vc": 0.55, "tree adaptive-4vc": 0.72},
	"complement": {"cube deterministic": 0.47, "cube duato": 0.35, "tree adaptive-1vc": 0.95, "tree adaptive-2vc": 0.95, "tree adaptive-4vc": 0.95},
	"transpose":  {"cube deterministic": 0.24, "cube duato": 0.50, "tree adaptive-1vc": 0.33, "tree adaptive-2vc": 0.60, "tree adaptive-4vc": 0.78},
	"bitrev":     {"cube deterministic": 0.20, "cube duato": 0.60, "tree adaptive-1vc": 0.35, "tree adaptive-2vc": 0.60, "tree adaptive-4vc": 0.78},
}

var patterns = []string{"uniform", "complement", "transpose", "bitrev"}

func main() {
	obsFlags := obs.AddFlags(flag.CommandLine)
	resFlags := resilience.AddFlags(flag.CommandLine)
	telFlags := telemetry.AddFlags(flag.CommandLine)
	quick := flag.Bool("quick", false, "coarse grid and short horizon (preview quality)")
	ablate := flag.Bool("ablations", false, "also run the extension/ablation studies")
	degraded := flag.Bool("degraded", false, "also run the degraded-operation study (clean vs faulted vs bursty saturation)")
	faultsFlag := flag.String("faults", "", "fault schedule applied to every grid run (spec or smart/faults/v1 JSONL file); deterministic cube routing is fault-oblivious and may wedge — pair with -watchdog")
	burst := flag.String("burst", "", "bursty injection applied to every grid run (mmpp:<dwellOn>:<dwellOff>:<peak>)")
	seed := flag.Uint64("seed", 1, "random seed")
	csvDir := flag.String("csvdir", "", "write every series as CSV files into this directory")
	manifestPath := flag.String("manifest", "", "append one JSONL run record per simulation to this file")
	selfCheck := flag.Bool("selfcheck", false, "shadow every run with the reference oracle simulator in lockstep (slow; fails at the first divergent cycle)")
	shards := flag.Int("shards", 1, "fabric shards per run (0 = auto from network size and GOMAXPROCS; results are bit-identical)")
	flag.Parse()

	faultsSpec, err := faults.ResolveFlag(*faultsFlag)
	if err != nil {
		fatal(err)
	}

	step := 0.05
	var warmup, horizon int64 // 0 = paper defaults
	if *quick {
		step = 0.10
		warmup, horizon = 1000, 8000
	}
	var loads []float64
	for l := step; l <= 1.0001; l += step {
		loads = append(loads, l)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}

	elapsed := obs.Stopwatch()
	fmt.Println("SMART reproduction of: Petrini & Vanneschi, \"Network Performance under")
	fmt.Println("Physical Constraints\", ICPP 1997")
	fmt.Printf("grid: %d loads (step %.2f), seed %d", len(loads), step, *seed)
	if *quick {
		fmt.Print(", QUICK preview (warm-up 1000, horizon 8000)")
	} else {
		fmt.Print(", paper methodology (warm-up 2000, horizon 20000)")
	}
	fmt.Println()
	if faultsSpec != "" || *burst != "" {
		fmt.Printf("DEGRADED grid: faults=%q burst=%q (paper columns assume a clean fabric)\n", faultsSpec, *burst)
	}
	fmt.Println()

	// ---- Tables 1 and 2 ----
	fmt.Println("== Table 1: cube router delays (ns) ==")
	fmt.Println()
	fmt.Print(results.FormatTimings(cost.Table1()))
	fmt.Println()
	fmt.Println("== Table 2: fat-tree router delays (ns) ==")
	fmt.Println()
	fmt.Print(results.FormatTimings(cost.Table2()))
	fmt.Println()

	// ---- Figures 5, 6, 7 ----
	configs := core.PaperConfigs()

	stopProf, err := obsFlags.Start()
	if err != nil {
		fatal(err)
	}
	ctx, stop := resilience.SignalContext(context.Background())
	defer stop()
	opts := core.Options{Logger: obsFlags.Logger(), Context: ctx, SelfCheck: *selfCheck, Shards: *shards}
	if ckpt, err = resFlags.Open(); err != nil {
		fatal(err)
	}
	if ckpt != nil {
		if resFlags.Resume && ckpt.Len() > 0 {
			fmt.Fprintf(os.Stderr, "experiments: resuming past %d checkpointed runs in %s\n", ckpt.Len(), ckpt.Path())
		}
		opts.Checkpoint = ckpt
	}
	var profiler *obs.StageProfiler
	var progress *obs.Progress
	if obsFlags.Verbose {
		profiler = obs.NewStageProfiler()
		progress = obs.NewProgress(os.Stderr, len(patterns)*len(configs)*len(loads), 5*time.Second)
		progress.Start()
		opts.Profiler = profiler
		opts.Progress = progress
	}
	tel, telAddr, telStop, err := telFlags.Open(resFlags.Resume)
	if err != nil {
		fatal(err)
	}
	if tel != nil {
		if tel.Server != nil {
			// Grid progress is served even without -v: an unstarted
			// Progress never prints but still snapshots.
			if progress == nil {
				progress = obs.NewProgress(os.Stderr, len(patterns)*len(configs)*len(loads), 5*time.Second)
				opts.Progress = progress
			}
			tel.Server.SetProgress(progress)
			fmt.Fprintf(os.Stderr, "experiments: serving telemetry on http://%s/metrics\n", telAddr)
		}
		opts.Telemetry = tel
	}
	if *manifestPath != "" {
		mf, err := os.Create(*manifestPath)
		if err != nil {
			fatal(err)
		}
		defer mf.Close()
		opts.Manifest = obs.NewManifestWriter(mf)
	}

	type sweepKey struct{ pattern, label string }
	sweeps := map[sweepKey][]core.Result{}
	labels := make([]string, len(configs))
	for _, pattern := range patterns {
		for i, cfg := range configs {
			cfg.Pattern = pattern
			cfg.Seed = *seed
			cfg.Warmup, cfg.Horizon = warmup, horizon
			cfg.WatchdogCycles = resFlags.Watchdog
			cfg.Faults, cfg.Burst = faultsSpec, *burst
			o := opts
			o.Batch = cfg.Label() + "/" + pattern
			swept, err := core.SweepWith(cfg, loads, runtime.GOMAXPROCS(0), o)
			if err != nil {
				fatal(err)
			}
			labels[i] = swept[0].Config.Label()
			sweeps[sweepKey{pattern, labels[i]}] = swept
			fmt.Fprintf(os.Stderr, "swept %-22s %-11s (%s elapsed)\n", labels[i], pattern, elapsed().Round(time.Second))
		}
	}
	progress.Stop()

	figure := func(title, figure string, selected []string, pattern string) {
		fmt.Printf("== %s (%s, %s traffic) ==\n\n", title, figure, pattern)
		sel := make([][]core.Result, len(selected))
		for i, label := range selected {
			sel[i] = sweeps[sweepKey{pattern, label}]
		}
		h, r, err := results.MultiSeries(selected, sel, func(res core.Result) float64 { return res.Sample.Accepted }, "offered")
		if err != nil {
			fatal(err)
		}
		fmt.Println("accepted bandwidth (fraction of capacity):")
		fmt.Print(results.FormatTable(h, r))
		writeCSV(*csvDir, fmt.Sprintf("%s-%s-accepted.csv", figure, pattern), h, r)
		h, r, err = results.MultiSeries(selected, sel, func(res core.Result) float64 { return res.Sample.AvgLatency }, "offered")
		if err != nil {
			fatal(err)
		}
		fmt.Println("network latency (cycles):")
		fmt.Print(results.FormatTable(h, r))
		writeCSV(*csvDir, fmt.Sprintf("%s-%s-latency.csv", figure, pattern), h, r)
		fmt.Println()
	}

	treeLabels := labels[2:]
	cubeLabels := labels[:2]
	for _, p := range patterns {
		figure("4-ary 4-tree with 1, 2 and 4 virtual channels", "fig5", treeLabels, p)
	}
	for _, p := range patterns {
		figure("16-ary 2-cube, deterministic vs minimal adaptive", "fig6", cubeLabels, p)
	}
	for _, p := range patterns {
		fmt.Printf("== Normalized absolute comparison (fig7, %s traffic) ==\n\n", p)
		sel := make([][]core.Result, len(labels))
		for i, label := range labels {
			sel[i] = sweeps[sweepKey{p, label}]
		}
		h, r, err := results.MultiSeries(labels, sel, func(res core.Result) float64 { return res.AcceptedBitsNS }, "offered")
		if err != nil {
			fatal(err)
		}
		fmt.Println("accepted traffic (bits/ns):")
		fmt.Print(results.FormatTable(h, r))
		writeCSV(*csvDir, fmt.Sprintf("fig7-%s-throughput.csv", p), h, r)
		h, r, err = results.MultiSeries(labels, sel, func(res core.Result) float64 { return res.LatencyNS }, "offered")
		if err != nil {
			fatal(err)
		}
		fmt.Println("network latency (ns):")
		fmt.Print(results.FormatTable(h, r))
		writeCSV(*csvDir, fmt.Sprintf("fig7-%s-latency.csv", p), h, r)
		fmt.Println()
	}

	// ---- Scorecard ----
	fmt.Println("== Scorecard: saturation points, paper vs measured (fraction of capacity) ==")
	fmt.Println()
	headers := []string{"pattern", "configuration", "paper", "measured", "measured bits/ns"}
	var rows [][]string
	for _, p := range patterns {
		for _, label := range labels {
			swept := sweeps[sweepKey{p, label}]
			row := results.Summarize(label, swept, 0.02)
			measured := fmt.Sprintf("%.2f", row.SaturationFrac)
			if !row.Saturated {
				measured = ">" + measured
			}
			rows = append(rows, []string{
				p, label,
				fmt.Sprintf("%.2f", paperSaturation[p][label]),
				measured,
				fmt.Sprintf("%.0f", row.SaturationBitsNS),
			})
		}
	}
	fmt.Print(results.FormatTable(headers, rows))
	writeCSV(*csvDir, "scorecard.csv", headers, rows)
	fmt.Println()

	if *degraded {
		runDegraded(loads, warmup, horizon, *seed, *csvDir, opts, elapsed)
	}

	if *ablate {
		runAblations(loads, warmup, horizon, *seed, *csvDir)
	}

	if profiler != nil {
		fmt.Fprintln(os.Stderr)
		fmt.Fprintln(os.Stderr, "per-stage engine timing (hottest first):")
		fmt.Fprint(os.Stderr, obs.FormatStageReport(profiler.Report()))
	}
	if ckpt != nil {
		if err := ckpt.Close(); err != nil {
			fatal(err)
		}
	}
	if err := telStop(); err != nil {
		fatal(err)
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
	fmt.Printf("total wall time %s\n", elapsed().Round(time.Second))
}

func writeCSV(dir, name string, headers []string, rows [][]string) {
	if dir == "" {
		return
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := results.WriteCSV(f, headers, rows); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	if ckpt != nil {
		ckpt.Close()
		fmt.Fprintf(os.Stderr, "experiments: checkpoint %s holds %d completed runs; rerun with -resume to continue\n", ckpt.Path(), ckpt.Len())
	}
	os.Exit(1)
}
