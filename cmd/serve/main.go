// Command serve runs the sweep service: an HTTP API over a persistent
// content-addressed result store (internal/store). POST a config to
// /v1/run (or a config-and-loads grid to /v1/sweep) and the service
// answers from the store when it can, executing only the configs it has
// never seen — each exactly once, even under concurrent identical
// requests — and journaling every result so the cache survives
// restarts. Responses carry a strong ETag over the record's content
// digest; the X-Smart-Cache header says whether the answer was a hit,
// a miss or coalesced into another request's run.
//
// Examples:
//
//	serve -store results/               # listen on :8080 over ./results
//	serve -store results/ -addr :0 -v  # ephemeral port, request logs
//
//	curl -s localhost:8080/v1/run -d '{"Network":"tree","VCs":2,"Load":0.4}'
//	curl -s localhost:8080/v1/sweep -d '{"config":{"Network":"cube","Algorithm":"duato"},"loads":[0.2,0.4,0.6]}'
//
// The bound address is printed to stderr as "serve: serving on
// http://HOST:PORT" so scripts can discover an ephemeral port. SIGINT
// shuts down gracefully: in-flight requests finish (a second SIGINT
// kills the process) and the store is synced.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"smart/internal/obs"
	"smart/internal/resilience"
	"smart/internal/serve"
	"smart/internal/store"
)

func main() {
	var opts serve.Options
	obsFlags := obs.AddFlags(flag.CommandLine)
	addr := flag.String("addr", ":8080", "listen address (\":0\" picks an ephemeral port)")
	dir := flag.String("store", "", "result store directory (required; created if missing)")
	compact := flag.Bool("compact", false, "compact the store on startup, reclaiming superseded entries")
	flag.IntVar(&opts.Workers, "workers", 0, "max concurrent executions (0 = GOMAXPROCS)")
	flag.IntVar(&opts.Queue, "queue", 64, "misses that may wait for a worker before new ones get 503")
	flag.IntVar(&opts.Shards, "shards", 0, "fabric shards per run (0 = auto; results are bit-identical)")
	flag.Int64Var(&opts.Watchdog, "watchdog", resilience.DefaultWatchdogCycles, "no-progress `cycles` stamped onto configs without their own watchdog (-1 disables)")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "serve: -store is required")
		os.Exit(2)
	}
	opts.Logger = obsFlags.Logger()

	st, err := store.Open(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	if *compact {
		before := st.Stats()
		if err := st.Compact(); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		after := st.Stats()
		fmt.Fprintf(os.Stderr, "serve: compacted %s: %d records, %d -> %d bytes\n",
			*dir, after.Records, before.Bytes, after.Bytes)
	}

	ctx, stop := resilience.SignalContext(context.Background())
	defer stop()

	svc := serve.New(st, opts)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		st.Close()
		os.Exit(1)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	fmt.Fprintf(os.Stderr, "serve: store %s holds %d results\n", *dir, st.Len())
	fmt.Fprintf(os.Stderr, "serve: serving on http://%s\n", ln.Addr())

	<-ctx.Done()
	stop() // restore default handling: a second SIGINT kills the process
	fmt.Fprintln(os.Stderr, "serve: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
	}
	if err := st.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}
