// Command benchfabric measures the wormhole fabric's raw per-cycle cost
// — the same {tree,cube} x load {0.2,0.6,0.9} grid as BenchmarkFabric in
// bench_test.go — and records the results as JSON. The committed
// BENCH_fabric.json holds one record per measured revision, so the
// repository carries its own perf trajectory:
//
//	go run ./cmd/benchfabric -label my-change -o BENCH_fabric.json -append
//
// appends a record to the existing file; without -append the file is
// replaced by a single record.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"smart"
)

// point is one measured (network, load) cell.
type point struct {
	Network      string  `json:"network"`
	Load         float64 `json:"load"`
	NSPerCycle   float64 `json:"ns_per_cycle"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	AllocsPerCyc float64 `json:"allocs_per_cycle"`
	BytesPerCyc  float64 `json:"bytes_per_cycle"`
}

// record is one measured revision.
type record struct {
	Schema    string  `json:"schema"`
	Label     string  `json:"label"`
	Timestamp string  `json:"timestamp"`
	GoVersion string  `json:"go_version"`
	Results   []point `json:"results"`
}

func measure(network smart.NetworkKind, load float64) (point, error) {
	var fail error
	res := testing.Benchmark(func(b *testing.B) {
		s, err := smart.NewSimulation(smart.Config{Network: network, Load: load, Seed: 1})
		if err != nil {
			fail = err
			b.Skip()
		}
		s.Engine.Run(500) // settle into steady state at this load
		b.ReportAllocs()
		b.ResetTimer()
		start := s.Engine.Cycle()
		s.Engine.Run(start + int64(b.N))
	})
	if fail != nil {
		return point{}, fail
	}
	nsPerCycle := float64(res.T.Nanoseconds()) / float64(res.N)
	return point{
		Network:      string(network),
		Load:         load,
		NSPerCycle:   nsPerCycle,
		CyclesPerSec: 1e9 / nsPerCycle,
		AllocsPerCyc: float64(res.MemAllocs) / float64(res.N),
		BytesPerCyc:  float64(res.MemBytes) / float64(res.N),
	}, nil
}

func main() {
	label := flag.String("label", "local", "label for this record (e.g. a change name)")
	out := flag.String("o", "BENCH_fabric.json", "output file")
	appendTo := flag.Bool("append", false, "append to the existing file instead of replacing it")
	flag.Parse()

	rec := record{
		Schema: "smart/bench-fabric/v1",
		Label:  *label,
		//smartlint:allow wallclock — timestamping the committed benchmark record; not simulation time
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
	}
	for _, network := range []smart.NetworkKind{smart.NetworkTree, smart.NetworkCube} {
		for _, load := range []float64{0.2, 0.6, 0.9} {
			p, err := measure(network, load)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchfabric: %s load %.1f: %v\n", network, load, err)
				os.Exit(1)
			}
			fmt.Printf("%-5s load=%.1f  %10.0f cycles/sec  %8.1f ns/cycle  %6.2f allocs/cycle\n",
				network, p.Load, p.CyclesPerSec, p.NSPerCycle, p.AllocsPerCyc)
			rec.Results = append(rec.Results, p)
		}
	}

	var records []record
	if *appendTo {
		if buf, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(buf, &records); err != nil {
				fmt.Fprintf(os.Stderr, "benchfabric: existing %s is not a record array: %v\n", *out, err)
				os.Exit(1)
			}
		}
	}
	records = append(records, rec)
	buf, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchfabric:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchfabric:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d records)\n", *out, len(records))
}
