// Command benchfabric measures the wormhole fabric's raw per-cycle cost
// over a nodes x shards x load matrix and records the results as JSON.
// The committed BENCH_fabric.json holds one record per measured
// revision, so the repository carries its own perf trajectory:
//
//	go run ./cmd/benchfabric -label my-change -o BENCH_fabric.json -append
//
// appends a record to the existing file (v1 records are preserved
// verbatim); without -append the file is replaced by a single record.
// -o ” measures without writing, which, combined with the built-in
// cross-shard Counters check, is the CI smoke invocation:
//
//	go run ./cmd/benchfabric -nodes 256 -shards 1,4 -loads 0.6 -o ''
//
// Network sizes are named by node count and resolved through per-family
// presets (tree: 256=4-ary 4-tree ... 110592=48-ary 3-tree; cube:
// 256=16x16 torus ... 262144=64^3 torus). Before timing, every
// (network, nodes, load) cell is run at a fixed short horizon on every
// requested shard count and the fabric Counters are diffed against the
// first: a sharded engine that drifts by a single flit fails the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"smart"
	"smart/internal/order"
	"smart/internal/wormhole"
)

// point is one measured (network, nodes, shards, load) cell.
type point struct {
	Network      string  `json:"network"`
	Nodes        int     `json:"nodes"`
	Shards       int     `json:"shards"`
	Load         float64 `json:"load"`
	NSPerCycle   float64 `json:"ns_per_cycle"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	AllocsPerCyc float64 `json:"allocs_per_cycle"`
	BytesPerCyc  float64 `json:"bytes_per_cycle"`
}

// record is one measured revision.
type record struct {
	Schema    string `json:"schema"`
	Label     string `json:"label"`
	Timestamp string `json:"timestamp"`
	GoVersion string `json:"go_version"`
	// MaxProcs pins the host parallelism the shard columns ran under —
	// without it a shards=4 row from a 1-core box reads as a regression.
	MaxProcs int     `json:"max_procs"`
	Note     string  `json:"note,omitempty"`
	Results  []point `json:"results"`
}

// presets resolves a node count to the (K, N) that builds it, per
// family. Tree sizes are k-ary n-trees (K^N nodes), cube sizes are
// K^N tori.
var presets = map[smart.NetworkKind]map[int][2]int{
	smart.NetworkTree: {
		256:    {4, 4},
		4096:   {8, 4},
		65536:  {16, 4},
		110592: {48, 3},
	},
	smart.NetworkCube: {
		256:    {16, 2},
		4096:   {16, 3},
		32768:  {32, 3},
		110592: {48, 3},
		262144: {64, 3},
	},
}

func configFor(network smart.NetworkKind, nodes int, load float64) (smart.Config, error) {
	kn, ok := presets[network][nodes]
	if !ok {
		var known []string
		for _, n := range order.Keys(presets[network]) {
			known = append(known, strconv.Itoa(n))
		}
		return smart.Config{}, fmt.Errorf("no %s preset for %d nodes (have %s)", network, nodes, strings.Join(known, ", "))
	}
	return smart.Config{Network: network, K: kn[0], N: kn[1], Load: load, Seed: 1}, nil
}

// measure times steady-state cycles of one cell.
func measure(network smart.NetworkKind, nodes, shards int, load float64, settle int64) (point, error) {
	cfg, err := configFor(network, nodes, load)
	if err != nil {
		return point{}, err
	}
	var fail error
	res := testing.Benchmark(func(b *testing.B) {
		s, err := smart.NewSimulationShards(cfg, shards)
		if err != nil {
			fail = err
			b.Skip()
		}
		s.Engine.Run(settle) // settle into steady state at this load
		b.ReportAllocs()
		b.ResetTimer()
		start := s.Engine.Cycle()
		s.Engine.Run(start + int64(b.N))
	})
	if fail != nil {
		return point{}, fail
	}
	nsPerCycle := float64(res.T.Nanoseconds()) / float64(res.N)
	return point{
		Network:      string(network),
		Nodes:        nodes,
		Shards:       shards,
		Load:         load,
		NSPerCycle:   nsPerCycle,
		CyclesPerSec: 1e9 / nsPerCycle,
		AllocsPerCyc: float64(res.MemAllocs) / float64(res.N),
		BytesPerCyc:  float64(res.MemBytes) / float64(res.N),
	}, nil
}

// checkShards runs one cell at a fixed horizon on every requested shard
// count and diffs the fabric Counters against the first. This is the
// determinism smoke CI gates on.
func checkShards(network smart.NetworkKind, nodes int, shardList []int, load float64, horizon int64) error {
	if len(shardList) < 2 {
		return nil
	}
	cfg, err := configFor(network, nodes, load)
	if err != nil {
		return err
	}
	type outcome struct {
		counters wormhole.Counters
		shards   int
	}
	var base *outcome
	for _, shards := range shardList {
		s, err := smart.NewSimulationShards(cfg, shards)
		if err != nil {
			return err
		}
		s.Engine.Run(horizon)
		c := s.Fabric.Counters()
		if base == nil {
			base = &outcome{counters: c, shards: s.Shards}
			continue
		}
		if c != base.counters {
			return fmt.Errorf("%s n=%d load=%.2f: Counters diverge between shards=%d and shards=%d after %d cycles:\n  %+v\n  %+v",
				network, nodes, load, base.shards, s.Shards, horizon, base.counters, c)
		}
	}
	return nil
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(csv string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchfabric:", err)
	os.Exit(1)
}

func main() {
	label := flag.String("label", "local", "label for this record (e.g. a change name)")
	out := flag.String("o", "BENCH_fabric.json", "output file; empty measures without writing")
	appendTo := flag.Bool("append", false, "append to the existing file instead of replacing it")
	networks := flag.String("networks", "tree,cube", "comma-separated network families")
	nodesCSV := flag.String("nodes", "256", "comma-separated node counts (preset sizes)")
	shardsCSV := flag.String("shards", "1", "comma-separated shard counts (0 = auto)")
	loadsCSV := flag.String("loads", "0.2,0.6,0.9", "comma-separated offered loads")
	settle := flag.Int64("settle", 500, "warm-up cycles before timing each cell")
	checkCycles := flag.Int64("check", 300, "horizon for the cross-shard Counters diff; 0 disables")
	note := flag.String("note", "", "free-form caveat recorded with this revision")
	flag.Parse()

	nodeList, err := parseInts(*nodesCSV)
	if err != nil {
		fatal(err)
	}
	shardList, err := parseInts(*shardsCSV)
	if err != nil {
		fatal(err)
	}
	loadList, err := parseFloats(*loadsCSV)
	if err != nil {
		fatal(err)
	}
	var netList []smart.NetworkKind
	for _, n := range strings.Split(*networks, ",") {
		netList = append(netList, smart.NetworkKind(strings.TrimSpace(n)))
	}

	rec := record{
		Schema: "smart/bench-fabric/v2",
		Label:  *label,
		//smartlint:allow wallclock — timestamping the committed benchmark record; not simulation time
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		MaxProcs:  runtime.GOMAXPROCS(0),
		Note:      *note,
	}
	for _, network := range netList {
		for _, nodes := range nodeList {
			for _, load := range loadList {
				if *checkCycles > 0 {
					if err := checkShards(network, nodes, shardList, load, *checkCycles); err != nil {
						fatal(err)
					}
				}
				for _, shards := range shardList {
					p, err := measure(network, nodes, shards, load, *settle)
					if err != nil {
						fatal(fmt.Errorf("%s n=%d shards=%d load=%.1f: %v", network, nodes, shards, load, err))
					}
					fmt.Printf("%-5s n=%-7d shards=%-2d load=%.1f  %10.0f cycles/sec  %10.1f ns/cycle  %6.2f allocs/cycle\n",
						network, nodes, p.Shards, p.Load, p.CyclesPerSec, p.NSPerCycle, p.AllocsPerCyc)
					rec.Results = append(rec.Results, p)
				}
			}
		}
	}

	if *out == "" {
		fmt.Println("no output file; record discarded (cross-shard check passed)")
		return
	}
	// Keep prior records byte-for-byte (v1 records have no nodes/shards
	// fields): splice the new record in as raw JSON.
	var records []json.RawMessage
	if *appendTo {
		if buf, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(buf, &records); err != nil {
				fatal(fmt.Errorf("existing %s is not a record array: %v", *out, err))
			}
		}
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		fatal(err)
	}
	records = append(records, raw)
	buf, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d records)\n", *out, len(records))
}
