// Command netsim runs a single simulation of the SMART model and reports
// its measurements: one (network, algorithm, pattern, load) point of the
// paper's evaluation, in both normalized and absolute units.
//
// Examples:
//
//	netsim -net cube -alg duato -pattern uniform -load 0.6
//	netsim -net tree -vcs 2 -pattern transpose -load 0.4 -horizon 40000
//	netsim -net cube -k 8 -n 3 -alg deterministic -pattern tornado -load 0.3
package main

import (
	"flag"
	"fmt"
	"os"

	"smart/internal/chanstats"
	"smart/internal/core"
	"smart/internal/faults"
	"smart/internal/obs"
	"smart/internal/telemetry"
	"smart/internal/topology"
)

func main() {
	var cfg core.Config
	var network, alg string
	obsFlags := obs.AddFlags(flag.CommandLine)
	telFlags := telemetry.AddFlags(flag.CommandLine)
	flag.StringVar(&network, "net", "tree", "network family: tree or cube")
	flag.IntVar(&cfg.K, "k", 0, "radix (default: 4 for the tree, 16 for the cube)")
	flag.IntVar(&cfg.N, "n", 0, "dimension/levels (default: 4 for the tree, 2 for the cube)")
	flag.StringVar(&alg, "alg", "", "routing algorithm: adaptive (tree), deterministic or duato (cube)")
	flag.IntVar(&cfg.VCs, "vcs", 0, "virtual channels per link (tree: 1/2/4; cube: 4)")
	flag.IntVar(&cfg.BufDepth, "buf", 0, "lane buffer depth in flits (default 4)")
	flag.IntVar(&cfg.PacketBytes, "packet", 0, "packet size in bytes (default 64)")
	flag.StringVar(&cfg.Pattern, "pattern", "uniform", "traffic pattern: uniform, complement, bitrev, transpose, tornado, shuffle, neighbor, hotspot")
	flag.Float64Var(&cfg.Load, "load", 0.4, "offered bandwidth as a fraction of capacity")
	flag.Float64Var(&cfg.HotspotFraction, "hotfrac", 0, "hotspot traffic fraction (hotspot pattern)")
	flag.Int64Var(&cfg.HotspotPeriod, "hotperiod", 0, "rotate the hotspot pattern's hot node every N cycles (0 = fixed)")
	faultsFlag := flag.String("faults", "", "fault schedule: spec like link:R:P@C1-C2,router:R@C,rand-links:N@C — or a smart/faults/v1 JSONL file")
	flag.StringVar(&cfg.Burst, "burst", "", "bursty injection: mmpp:<dwellOn>:<dwellOff>:<peak>")
	flag.Uint64Var(&cfg.Seed, "seed", 1, "random seed")
	flag.Int64Var(&cfg.Warmup, "warmup", 0, "warm-up cycles before measurement (default 2000)")
	flag.Int64Var(&cfg.Horizon, "horizon", 0, "total simulated cycles (default 20000)")
	flag.IntVar(&cfg.InjLanes, "injlanes", 0, "injection lanes per node (default 1: source throttling)")
	flag.IntVar(&cfg.LinkCycles, "linkcycles", 0, "flit flight time per link in cycles (default 1; >1 = pipelined long wires)")
	flag.BoolVar(&cfg.StoreAndForward, "saf", false, "store-and-forward switching (needs -buf >= packet flits)")
	util := flag.Bool("util", false, "also print channel utilization by level (tree) or dimension (cube/mesh)")
	shards := flag.Int("shards", 1, "fabric shards (0 = auto from network size and GOMAXPROCS; results are bit-identical)")
	flag.Parse()
	cfg.Network = core.NetworkKind(network)
	cfg.Algorithm = alg
	var err error
	if cfg.Faults, err = faults.ResolveFlag(*faultsFlag); err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(1)
	}

	stopProf, err := obsFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(1)
	}
	opts := core.Options{Logger: obsFlags.Logger()}
	var profiler *obs.StageProfiler
	if obsFlags.Verbose {
		profiler = obs.NewStageProfiler()
		opts.Profiler = profiler
	}
	tel, telAddr, telStop, err := telFlags.Open(false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(1)
	}
	if tel != nil {
		if tel.Server != nil {
			fmt.Fprintf(os.Stderr, "netsim: serving telemetry on http://%s/metrics\n", telAddr)
		}
		opts.Telemetry = tel
	}
	sm, err := core.NewSimulationShards(cfg, *shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(1)
	}
	res, err := sm.RunWith(opts)
	if terr := telStop(); terr != nil && err == nil {
		err = terr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(1)
	}
	c := res.Config
	fmt.Printf("configuration    %s (%d-ary %d-%s), pattern %s, seed %d\n", c.Label(), c.K, c.N, c.Network, c.Pattern, c.Seed)
	fmt.Printf("methodology      warm-up %d cycles, horizon %d cycles, %dB packets, %d-flit buffers\n", c.Warmup, c.Horizon, c.PacketBytes, c.BufDepth)
	fmt.Printf("clock            %.2f ns (T_routing %.2f, T_crossbar %.2f, T_link %.2f)\n",
		res.Timing.Clock, res.Timing.TRouting, res.Timing.TCrossbar, res.Timing.TLink)
	fmt.Println()
	s := res.Sample
	fmt.Printf("offered          %.3f of capacity   (%.1f bits/ns aggregate)\n", s.Offered, res.OfferedBitsNS)
	fmt.Printf("accepted         %.3f of capacity   (%.1f bits/ns aggregate)\n", s.Accepted, res.AcceptedBitsNS)
	fmt.Printf("latency          %.1f cycles mean   (%.2f us)\n", s.AvgLatency, res.LatencyNS/1000)
	fmt.Printf("                 %.1f cycles p95, %.1f cycles head mean\n", s.P95Latency, s.AvgHeadLatency)
	fmt.Printf("packets          %d delivered, %d created in window, %.2f switch hops mean\n",
		s.PacketsDelivered, s.PacketsCreated, s.AvgHops)
	if sm.Fabric.HasFaults() {
		fmt.Printf("faults           %d events applied, %d fault stalls, %d draws dropped at dead endpoints\n",
			sm.Faults.Applied(), sm.Fabric.FaultStalls(), sm.Injector.Dropped())
		if rr, ok := sm.Fabric.Alg.(interface{ Rerouted() int64 }); ok {
			fmt.Printf("                 %d headers rerouted around fault masks\n", rr.Rerouted())
		}
	}
	if s.CreatedLoad-s.Accepted > 0.02 {
		fmt.Println()
		fmt.Println("the network is saturated at this offered load")
	}

	if *util {
		fmt.Println()
		window := c.Horizon - c.Warmup
		switch top := sm.Top.(type) {
		case *topology.Tree:
			levels, err := chanstats.TreeLevels(sm.Fabric, top, window)
			if err != nil {
				fmt.Fprintln(os.Stderr, "netsim:", err)
				os.Exit(1)
			}
			fmt.Println("channel utilization by level (fraction of cycles busy):")
			for _, l := range levels {
				fmt.Printf("  level %d   up %.3f   down %.3f\n", l.Level, l.Up, l.Down)
			}
		case *topology.Cube:
			dims, err := chanstats.CubeDims(sm.Fabric, top, window)
			if err != nil {
				fmt.Fprintln(os.Stderr, "netsim:", err)
				os.Exit(1)
			}
			fmt.Println("channel utilization by dimension (fraction of cycles busy):")
			for _, d := range dims {
				fmt.Printf("  dim %d     plus %.3f  minus %.3f\n", d.Dim, d.Plus, d.Minus)
			}
		}
		if ej, err := chanstats.Ejection(sm.Fabric, window); err == nil {
			fmt.Printf("  ejection  %.3f\n", ej)
		}
	}

	if profiler != nil {
		fmt.Fprintln(os.Stderr)
		fmt.Fprintln(os.Stderr, "per-stage engine timing (hottest first):")
		fmt.Fprint(os.Stderr, obs.FormatStageReport(profiler.Report()))
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(1)
	}
}
