package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smart/internal/lint"
)

// writeModule lays out a throwaway module so the exit-code contract can
// be exercised end to end without touching the real tree.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module injected\n\ngo 1.22\n"
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestExitCodeClean(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"ok.go": "package ok\n\nfunc Add(a, b int) int { return a + b }\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean module: want exit 0, got %d (stderr: %s)", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("clean module: want no output, got %q", stdout.String())
	}
}

func TestExitCodeFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"bad.go": "package bad\n\nimport \"time\"\n\nfunc Stamp() int64 { return time.Now().UnixNano() }\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("violating module: want exit 1, got %d (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "bad.go:5: wallclock:") {
		t.Fatalf("want a file:line: rule: diagnostic, got %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "1 violation(s)") {
		t.Fatalf("want a violation summary on stderr, got %q", stderr.String())
	}
}

func TestExitCodeLoadError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"ok.go": "package ok\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"./nonexistent/..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad pattern: want exit 2, got %d", code)
	}
}

func TestJSONOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"bad.go": "package bad\n\nimport \"time\"\n\nfunc Stamp() int64 { return time.Now().UnixNano() }\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("want exit 1, got %d (stderr: %s)", code, stderr.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON array of diagnostics: %v\n%s", err, stdout.String())
	}
	if len(diags) != 1 || diags[0].Rule != "wallclock" || diags[0].Line != 5 {
		t.Fatalf("want one wallclock diagnostic on line 5, got %+v", diags)
	}
}

func TestJSONOutputEmptyArray(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"ok.go": "package ok\n\nfunc Add(a, b int) int { return a + b }\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run(dir, []string{"-json", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("want exit 0, got %d (stderr: %s)", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Fatalf("clean -json run must print [], got %q", got)
	}
}
