// Command smartlint enforces the repo's determinism and shard-safety
// contracts statically: the per-file rules (no map-order iteration,
// wall-clock reads, global RNG use, exact float comparison, wall-time
// sleeps) plus the whole-program rules (shardsafe ownership on the
// compute-phase call graph, hotalloc escape-analysis gating, digestpure
// environmental-taint tracking). It prints "file:line: rule: message"
// diagnostics and exits 1 when any are found, so CI can gate every PR
// on the contract the golden fixtures only sample dynamically.
//
// Usage:
//
//	go run ./cmd/smartlint ./internal/... ./cmd/...
//
// With -json the diagnostics are emitted as a JSON array on stdout
// instead, for tooling that post-processes lint results.
//
// Exit codes: 0 clean, 1 findings, 2 load or analysis failure.
//
// A finding that is genuinely intended carries an inline
// "//smartlint:allow <rule> — <reason>" annotation; the reason is
// mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"smart/internal/lint"
)

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind a testable seam: dir anchors package
// patterns, args are the command-line arguments, and the return value
// is the process exit code (0 clean, 1 findings, 2 failure).
func run(dir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("smartlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text lines")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: smartlint [-json] [packages]\n\nrules: %v\n", lint.Rules)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "smartlint:", err)
		return 2
	}
	if *jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{} // encode as [], not null
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "smartlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "smartlint: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}
