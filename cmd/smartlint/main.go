// Command smartlint enforces the repo's determinism contract
// statically: no map-order iteration, wall-clock reads, global RNG
// use, exact float comparison, or wall-time sleeps in simulation code.
// It prints "file:line: rule: message" diagnostics and exits 1 when
// any are found, so CI can gate every PR on the contract the golden
// fixtures only sample dynamically.
//
// Usage:
//
//	go run ./cmd/smartlint ./internal/... ./cmd/...
//
// A finding that is genuinely intended carries an inline
// "//smartlint:allow <rule> — <reason>" annotation; the reason is
// mandatory.
package main

import (
	"flag"
	"fmt"
	"os"

	"smart/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: smartlint [packages]\n\nrules: %v\n", lint.Rules)
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smartlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "smartlint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}
