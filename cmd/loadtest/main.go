// Command loadtest drives the sweep service (cmd/serve) with a
// deterministic closed-loop HTTP workload and reports latency and
// throughput as a smart/loadtest/v1 JSON record.
//
// The corpus is a seeded sweep grid — one base config crossed with
// -loads load points and -seeds seeds — so every invocation issues the
// same request bodies in the same per-client discipline. The cold
// phase POSTs each corpus config once (every request a miss or
// coalesced execution, filling the store); the warm phase then issues
// -requests POSTs round-robin over the corpus, every one of which must
// be a cache hit. Each warm response is verified against the cold
// response for its fingerprint: same ETag, byte-identical body (the
// cache-status header is excluded by construction — it is a header).
// Every 16th warm request revalidates with If-None-Match and must get
// 304 Not Modified.
//
// With -url the harness targets a running server; without it a service
// is started in-process over a throwaway store, so
//
//	loadtest -requests 5000 -clients 8
//
// is a self-contained benchmark. Exit status is 1 if any verification
// fails.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smart/internal/core"
	"smart/internal/obs"
	"smart/internal/serve"
	"smart/internal/store"
)

// Report is the committed benchmark record.
type Report struct {
	Schema    string `json:"schema"`
	Timestamp string `json:"timestamp"`
	GoVersion string `json:"go_version"`
	Target    string `json:"target"`
	Corpus    int    `json:"corpus"`
	Clients   int    `json:"clients"`
	Cold      Phase  `json:"cold"`
	Warm      Phase  `json:"warm"`
}

// Phase summarizes one load phase.
type Phase struct {
	Requests int     `json:"requests"`
	WallMS   float64 `json:"wall_ms"`
	ReqPerS  float64 `json:"req_per_sec"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
}

// entry is one corpus request plus the reference response captured in
// the cold phase.
type entry struct {
	body     string
	bodyHash string
	etag     string
}

const schema = "smart/loadtest/v1"

func main() {
	url := flag.String("url", "", "base URL of a running serve instance (empty: start one in-process)")
	dir := flag.String("store", "", "store directory for the in-process server (empty: a temp dir)")
	clients := flag.Int("clients", 8, "concurrent closed-loop clients")
	requests := flag.Int("requests", 2000, "warm-phase requests across all clients")
	loadsN := flag.Int("loads", 10, "load points in the corpus grid")
	seedsN := flag.Int("seeds", 2, "seeds in the corpus grid")
	warmup := flag.Int64("warmup", 200, "config warm-up cycles (small: the corpus must execute quickly)")
	horizon := flag.Int64("horizon", 1000, "config horizon cycles")
	jsonPath := flag.String("json", "", "write the report JSON to this file (default stdout)")
	flag.Parse()

	corpus := buildCorpus(*loadsN, *seedsN, *warmup, *horizon)
	target := *url
	if target == "" {
		shutdown, addr, err := startInProcess(*dir, *clients)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadtest:", err)
			os.Exit(1)
		}
		defer shutdown()
		target = addr
	}
	target = strings.TrimRight(target, "/")
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *clients * 2,
		MaxIdleConnsPerHost: *clients * 2,
	}}

	cold, err := runPhase(client, target, corpus, *clients, len(corpus), true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadtest: cold phase:", err)
		os.Exit(1)
	}
	warm, err := runPhase(client, target, corpus, *clients, *requests, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadtest: warm phase:", err)
		os.Exit(1)
	}

	rep := Report{
		Schema: schema,
		//smartlint:allow wallclock — timestamping the committed benchmark record; not simulation time
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Target:    target,
		Corpus:    len(corpus),
		Clients:   *clients,
		Cold:      cold,
		Warm:      warm,
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadtest:", err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if *jsonPath != "" {
		if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadtest:", err)
			os.Exit(1)
		}
	} else {
		os.Stdout.Write(out)
	}
	fmt.Fprintf(os.Stderr, "loadtest: cold %d req, %.1f req/s, p50 %.2f ms, p99 %.2f ms\n",
		cold.Requests, cold.ReqPerS, cold.P50MS, cold.P99MS)
	fmt.Fprintf(os.Stderr, "loadtest: warm %d req, %.1f req/s, p50 %.2f ms, p99 %.2f ms\n",
		warm.Requests, warm.ReqPerS, warm.P50MS, warm.P99MS)
}

// buildCorpus crosses the base config with the load grid and seeds.
// The corpus is a pure function of the flags, so two invocations issue
// identical request bodies in identical order.
func buildCorpus(loads, seeds int, warmup, horizon int64) []*entry {
	var corpus []*entry
	for seed := 1; seed <= seeds; seed++ {
		for i := 0; i < loads; i++ {
			cfg := core.Config{
				Network: core.NetworkTree, Algorithm: core.AlgAdaptive, VCs: 2, K: 4, N: 2,
				Pattern: core.PatternUniform,
				Load:    0.9 * float64(i+1) / float64(loads),
				Seed:    uint64(seed),
				Warmup:  warmup, Horizon: horizon,
			}
			body, err := json.Marshal(cfg)
			if err != nil {
				panic(err) // Config is a plain value struct
			}
			corpus = append(corpus, &entry{body: string(body)})
		}
	}
	return corpus
}

// startInProcess opens a store and serves on an ephemeral port,
// returning a shutdown func and the base URL.
func startInProcess(dir string, clients int) (func(), string, error) {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "loadtest-store-")
		if err != nil {
			return nil, "", err
		}
		dir = tmp
	}
	st, err := store.Open(dir)
	if err != nil {
		return nil, "", err
	}
	svc := serve.New(st, serve.Options{Queue: clients * 2})
	ln, err := svc.Serve("127.0.0.1:0")
	if err != nil {
		st.Close()
		return nil, "", err
	}
	fmt.Fprintf(os.Stderr, "loadtest: in-process server on http://%s (store %s)\n", ln.Addr(), dir)
	return func() { ln.Close(); st.Close() }, "http://" + ln.Addr().String(), nil
}

// runPhase issues total requests over the corpus from closed-loop
// clients sharing one atomic cursor. In the cold phase each corpus
// entry is requested exactly once and its reference hash and ETag are
// captured; in the warm phase every response must be a cache hit that
// matches its entry's reference byte for byte.
func runPhase(client *http.Client, target string, corpus []*entry, clients, total int, cold bool) (Phase, error) {
	var cursor atomic.Int64
	latencies := make([][]float64, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	elapsed := obs.Stopwatch()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				n := int(cursor.Add(1)) - 1
				if n >= total {
					return
				}
				e := corpus[n%len(corpus)]
				ms, err := issue(client, target, e, n, cold)
				if err != nil {
					errs[c] = fmt.Errorf("request %d: %w", n, err)
					cursor.Store(int64(total)) // stop the other clients
					return
				}
				latencies[c] = append(latencies[c], ms)
			}
		}(c)
	}
	wg.Wait()
	wall := elapsed()
	if err := errors.Join(errs...); err != nil {
		return Phase{}, err
	}
	var all []float64
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Float64s(all)
	wallMS := float64(wall.Nanoseconds()) / 1e6
	return Phase{
		Requests: len(all),
		WallMS:   wallMS,
		ReqPerS:  float64(len(all)) / wall.Seconds(),
		P50MS:    percentile(all, 0.50),
		P99MS:    percentile(all, 0.99),
	}, nil
}

// issue performs one request and verifies it, returning its latency in
// milliseconds. Warm request n with n%16 == 3 is a revalidation: it
// sends the entry's ETag and expects 304.
func issue(client *http.Client, target string, e *entry, n int, cold bool) (float64, error) {
	revalidate := !cold && n%16 == 3
	req, err := http.NewRequest(http.MethodPost, target+"/v1/run", strings.NewReader(e.body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if revalidate {
		req.Header.Set("If-None-Match", e.etag)
	}
	sw := obs.Stopwatch()
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	ms := float64(sw().Nanoseconds()) / 1e6
	if err != nil {
		return 0, err
	}

	if revalidate {
		if resp.StatusCode != http.StatusNotModified {
			return 0, fmt.Errorf("revalidation status %d, want 304 (body %.200s)", resp.StatusCode, body)
		}
		return ms, nil
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d: %.200s", resp.StatusCode, body)
	}
	sum := sha256.Sum256(body)
	hash := hex.EncodeToString(sum[:])
	etag := resp.Header.Get("ETag")
	if cold {
		e.bodyHash, e.etag = hash, etag
		return ms, nil
	}
	if cache := resp.Header.Get("X-Smart-Cache"); cache != serve.CacheHit {
		return 0, fmt.Errorf("warm request was %q, want %q", cache, serve.CacheHit)
	}
	if hash != e.bodyHash {
		return 0, fmt.Errorf("warm body hash %s != cold %s (responses not byte-identical)", hash, e.bodyHash)
	}
	if etag != e.etag {
		return 0, fmt.Errorf("warm ETag %q != cold %q", etag, e.etag)
	}
	return ms, nil
}

// percentile returns the q-quantile of sorted (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
