// Command trace runs a short simulation and prints hop-by-hop timelines
// of the first packets — the microscope view of the wormhole model, handy
// for studying how the routing disciplines steer individual worms.
//
// Examples:
//
//	trace -net tree -vcs 2 -pattern transpose -load 0.5 -packets 3
//	trace -net cube -alg duato -pattern complement -load 0.7 -packets 5
//	trace -net tree -packets 10 -json > timelines.jsonl
//
// -json swaps the listing for machine-readable JSONL, one
// smart/trace/v1 record per packet, for joining against the telemetry
// sidecar or ad-hoc analysis.
package main

import (
	"flag"
	"fmt"
	"os"

	"smart/internal/core"
	"smart/internal/trace"
)

func main() {
	var cfg core.Config
	var network, alg string
	packets := flag.Int("packets", 3, "number of packets to trace (the first ids)")
	asJSON := flag.Bool("json", false, "emit JSONL timeline records instead of the listing")
	flag.StringVar(&network, "net", "tree", "network family: tree, cube or mesh")
	flag.IntVar(&cfg.K, "k", 0, "radix")
	flag.IntVar(&cfg.N, "n", 0, "dimension/levels")
	flag.StringVar(&alg, "alg", "", "routing algorithm")
	flag.IntVar(&cfg.VCs, "vcs", 0, "virtual channels")
	flag.StringVar(&cfg.Pattern, "pattern", "uniform", "traffic pattern")
	flag.Float64Var(&cfg.Load, "load", 0.4, "offered load (fraction of capacity)")
	flag.Uint64Var(&cfg.Seed, "seed", 1, "random seed")
	flag.Int64Var(&cfg.Horizon, "horizon", 3000, "simulated cycles")
	flag.Parse()
	cfg.Network = core.NetworkKind(network)
	cfg.Algorithm = alg
	cfg.Warmup = 1 // the window is irrelevant here; trace from the start

	sm, err := core.NewSimulation(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
	rec := trace.NewRecorder(*packets)
	sm.Fabric.Tracer = rec
	sm.Engine.Run(sm.Config.Horizon)

	namer, err := trace.NamerFor(sm.Top)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
	if *asJSON {
		if err := rec.WriteJSON(os.Stdout, sm.Fabric, namer); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("%s, %s traffic at %.0f%% load — first %d packets\n\n",
		sm.Config.Label(), sm.Config.Pattern, 100*sm.Config.Load, *packets)
	for _, pkt := range rec.Packets() {
		out, err := rec.Timeline(sm.Fabric, namer, pkt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
}
