// Command compare reproduces Figure 7 of the paper: the normalized
// comparison of the 16-ary 2-cube and the 4-ary 4-tree in absolute units.
// For one traffic pattern it sweeps all five configurations (cube
// deterministic, cube Duato, tree with 1/2/4 virtual channels), filters
// the cycle-domain results through the router-complexity and wire-delay
// cost model, and prints accepted traffic (bits/ns) and latency (ns)
// against the aggregate offered traffic.
//
// Examples:
//
//	compare -pattern uniform
//	compare -pattern complement -csv complement.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"smart/internal/core"
	"smart/internal/plot"
	"smart/internal/results"
)

func main() {
	pattern := flag.String("pattern", "uniform", "traffic pattern")
	seed := flag.Uint64("seed", 1, "random seed")
	step := flag.Float64("step", 0.05, "offered-load step")
	quick := flag.Bool("quick", false, "coarse grid and short horizon for a fast preview")
	csvPath := flag.String("csv", "", "write throughput and latency series as CSV (two files, suffixes -throughput and -latency)")
	showPlot := flag.Bool("plot", false, "render the comparison as ASCII charts")
	flag.Parse()

	var loads []float64
	st := *step
	var warmup, horizon int64
	if *quick {
		st = 0.1
		warmup, horizon = 1000, 8000
	}
	for l := st; l <= 1.0001; l += st {
		loads = append(loads, l)
	}

	configs := core.PaperConfigs()
	labels := make([]string, len(configs))
	sweeps := make([][]core.Result, len(configs))
	for i, cfg := range configs {
		cfg.Pattern = *pattern
		cfg.Seed = *seed
		cfg.Warmup, cfg.Horizon = warmup, horizon
		swept, err := core.Sweep(cfg, loads, runtime.GOMAXPROCS(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "compare:", err)
			os.Exit(1)
		}
		labels[i] = swept[0].Config.Label()
		sweeps[i] = swept
	}

	fmt.Printf("Figure 7 reproduction — %s traffic, absolute units after cost-model filtering\n\n", *pattern)

	fmt.Println("accepted traffic (bits/ns) vs offered fraction of capacity:")
	th, tr, err := results.MultiSeries(labels, sweeps, func(r core.Result) float64 { return r.AcceptedBitsNS }, "offered")
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}
	fmt.Print(results.FormatTable(th, tr))
	fmt.Println()

	fmt.Println("network latency (ns) vs offered fraction of capacity:")
	lh, lr, err := results.MultiSeries(labels, sweeps, func(r core.Result) float64 { return r.LatencyNS }, "offered")
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}
	fmt.Print(results.FormatTable(lh, lr))
	fmt.Println()

	if *showPlot {
		mkSeries := func(pick func(core.Result) float64) []plot.Series {
			out := make([]plot.Series, len(sweeps))
			for i, sw := range sweeps {
				xs := make([]float64, len(sw))
				ys := make([]float64, len(sw))
				for j, r := range sw {
					xs[j] = r.OfferedBitsNS
					ys[j] = pick(r)
				}
				out[i] = plot.Series{Name: labels[i], X: xs, Y: ys}
			}
			return out
		}
		charts := []plot.Chart{
			{Title: "accepted vs offered traffic", XLabel: "offered (bits/ns)", YLabel: "accepted (bits/ns)",
				Width: 64, Height: 16, Series: mkSeries(func(r core.Result) float64 { return r.AcceptedBitsNS })},
			{Title: "network latency vs offered traffic", XLabel: "offered (bits/ns)", YLabel: "latency (ns)",
				Width: 64, Height: 16, Series: mkSeries(func(r core.Result) float64 { return r.LatencyNS })},
		}
		for _, ch := range charts {
			rendered, err := ch.Render()
			if err != nil {
				fmt.Fprintln(os.Stderr, "compare:", err)
				os.Exit(1)
			}
			fmt.Print(rendered)
			fmt.Println()
		}
	}

	fmt.Println("summary (§10/§11 headline numbers):")
	rows := make([]results.SummaryRow, len(configs))
	for i := range configs {
		rows[i] = results.Summarize(labels[i], sweeps[i], 0.02)
	}
	fmt.Print(results.FormatSummary(rows))

	if *csvPath != "" {
		base := strings.TrimSuffix(*csvPath, filepath.Ext(*csvPath))
		ext := filepath.Ext(*csvPath)
		if ext == "" {
			ext = ".csv"
		}
		for _, out := range []struct {
			suffix  string
			headers []string
			rows    [][]string
		}{
			{"-throughput", th, tr},
			{"-latency", lh, lr},
		} {
			f, err := os.Create(base + out.suffix + ext)
			if err != nil {
				fmt.Fprintln(os.Stderr, "compare:", err)
				os.Exit(1)
			}
			if err := results.WriteCSV(f, out.headers, out.rows); err != nil {
				fmt.Fprintln(os.Stderr, "compare:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("wrote %s\n", base+out.suffix+ext)
		}
	}
}
