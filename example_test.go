package smart_test

import (
	"fmt"

	"smart"
)

// Example runs a small deterministic simulation through the facade: a
// 16-node quaternary fat-tree under the complement permutation, which the
// tree routes congestion-free.
func Example() {
	res, err := smart.Run(smart.Config{
		Network:   smart.NetworkTree,
		Algorithm: smart.AlgAdaptive,
		VCs:       2,
		K:         4, N: 2, // 16 nodes: fast enough for a doc example
		Pattern: smart.PatternComplement,
		Load:    0.5,
		Seed:    1,
		Warmup:  500, Horizon: 4500,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("accepted %.1f of the offered 0.5 capacity\n", res.Sample.Accepted)
	fmt.Printf("clock %.2f ns per cycle\n", res.Timing.Clock)
	// Output:
	// accepted 0.5 of the offered 0.5 capacity
	// clock 10.24 ns per cycle
}

// ExampleSweep maps an offered-load curve and locates the saturation
// point, the paper's §6 methodology.
func ExampleSweep() {
	cfg := smart.Config{
		Network:   smart.NetworkCube,
		Algorithm: smart.AlgDeterministic,
		VCs:       4,
		K:         4, N: 2,
		Pattern: smart.PatternUniform,
		Seed:    1,
		Warmup:  500, Horizon: 4500,
	}
	results, err := smart.Sweep(cfg, []float64{0.2, 0.5, 0.9}, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	series := smart.SeriesOf(results)
	if _, saturated := series.Saturation(0.02); saturated {
		fmt.Println("the network saturates inside the sweep")
	} else {
		fmt.Println("stable across the sweep")
	}
	fmt.Printf("points measured: %d\n", len(series))
	// Output:
	// the network saturates inside the sweep
	// points measured: 3
}
