module smart

go 1.22
