// Warm-up validation: is the paper's 2000-cycle warm-up enough?
//
//	go run ./examples/warmup
//
// The methodology (§4) collects statistics only after 2000 cycles "to
// allow the network to reach steady state". This example samples the
// 16-ary 2-cube's delivered throughput every 250 cycles under uniform
// traffic at a demanding load, charts the ramp, and reports the first
// sampled cycle from which throughput stays within 10% of its final
// value.
package main

import (
	"fmt"
	"log"

	"smart/internal/core"
	"smart/internal/metrics"
	"smart/internal/plot"
)

func main() {
	cfg := core.Config{
		Network:   core.NetworkCube,
		Algorithm: core.AlgDuato,
		VCs:       4,
		Pattern:   core.PatternUniform,
		Load:      0.7,
		Seed:      6,
		Warmup:    2000,
		Horizon:   10000,
	}
	sm, err := core.NewSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ts, err := metrics.NewTimeSeries(sm.Fabric, 250)
	if err != nil {
		log.Fatal(err)
	}
	ts.Register(sm.Engine)
	if _, err := sm.Run(); err != nil {
		log.Fatal(err)
	}

	points := ts.Points()
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		xs[i] = float64(p.Cycle)
		ys[i] = p.Throughput
	}
	chart := plot.Chart{
		Title:  fmt.Sprintf("throughput ramp, %s at %.0f%% load", sm.Config.Label(), 100*cfg.Load),
		XLabel: "cycle", YLabel: "flits/node/cycle",
		Width: 64, Height: 12,
		Series: []plot.Series{{Name: "delivered throughput", X: xs, Y: ys}},
	}
	out, err := chart.Render()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
	fmt.Println()
	if cycle, ok := ts.SteadyStateBy(0.10); ok {
		fmt.Printf("throughput within 10%% of its final value from cycle %d on\n", cycle)
		if cycle <= cfg.Warmup {
			fmt.Printf("=> the paper's %d-cycle warm-up is sufficient at this load\n", cfg.Warmup)
		} else {
			fmt.Printf("=> the paper's %d-cycle warm-up would still carry transient\n", cfg.Warmup)
		}
	} else {
		fmt.Println("throughput never settled within 10% (expect this above saturation)")
	}
}
