// Permutation study: why the fat-tree loves the complement permutation.
//
//	go run ./examples/permutation
//
// The paper (§8) observes that the complement belongs to a class of
// congestion-free permutations on k-ary n-trees: there is a choice of
// ascending paths under which no two descending paths share a link, so
// the network sustains nearly its full capacity — while the same pattern
// is the worst case for the cube, whose bisection every packet must
// cross. This example contrasts the two networks in simulation at a high
// offered load, then verifies the congestion-free property analytically:
// with the canonical "straight-up" ascent, complement descents are
// link-disjoint while transpose descents collide.
package main

import (
	"fmt"
	"log"

	"smart/internal/core"
	"smart/internal/topology"
	"smart/internal/traffic"
)

func main() {
	fmt.Println("accepted bandwidth at 85% offered load (fraction of capacity):")
	fmt.Println()
	configs := []core.Config{
		{Network: core.NetworkTree, Algorithm: core.AlgAdaptive, VCs: 1},
		{Network: core.NetworkCube, Algorithm: core.AlgDeterministic, VCs: 4},
		{Network: core.NetworkCube, Algorithm: core.AlgDuato, VCs: 4},
	}
	for _, pattern := range []string{core.PatternComplement, core.PatternTranspose} {
		fmt.Printf("  %-11s", pattern)
		for _, cfg := range configs {
			cfg.Pattern = pattern
			cfg.Load = 0.85
			cfg.Seed = 7
			res, err := core.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s %.2f", res.Config.Label(), res.Sample.Accepted)
		}
		fmt.Println()
	}

	tree, err := topology.NewTree(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	complement, err := traffic.NewComplement(tree.Nodes())
	if err != nil {
		log.Fatal(err)
	}
	transpose, err := traffic.NewTranspose(tree.Nodes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("analytic check (digit-aligned ascent, forced descent):")
	fmt.Printf("  max complement flows per descending link: %d  (1 = congestion-free)\n", maxDownLinkLoad(tree, complement))
	fmt.Printf("  max transpose  flows per descending link: %d  (>1 = contention)\n", maxDownLinkLoad(tree, transpose))
}

// maxDownLinkLoad routes every flow of the permutation along one
// particular minimal path — the digit-aligned ascent, which sets the
// label digit freed at each level l to the source's own digit l, then the
// forced down ports — and returns the maximum number of flows sharing any
// descending link. For the complement this assignment realizes Heller's
// congestion-free routing: two colliding flows would need sources
// agreeing on the ascent digits below the collision level and on the
// (complemented) destination digits at and above it, which pins every
// digit and makes the flows identical.
func maxDownLinkLoad(t *topology.Tree, p traffic.Pattern) int {
	type link struct{ sw, port int }
	load := map[link]int{}
	worst := 0
	for src := 0; src < t.Nodes(); src++ {
		dst := p.Dest(src, nil)
		if dst == src {
			continue
		}
		m := t.NCALevel(src, dst)
		// The ascent frees label digits 0..m-1; the digit-aligned choice
		// sets each to the source's same-index digit, so the NCA reached
		// has label digits: src[i] for i < m, src[i+1] (== dst[i+1]) for
		// i >= m.
		label := 0
		for i := t.N - 2; i >= 0; i-- {
			digit := t.Digit(src, i+1)
			if i < m {
				digit = t.Digit(src, i)
			}
			label = label*t.K + digit
		}
		sw := t.SwitchIndex(m, label)
		for level := m; level >= 0; level-- {
			port := t.DownPortTo(level, dst)
			l := link{sw, port}
			load[l]++
			if load[l] > worst {
				worst = load[l]
			}
			if level > 0 {
				sw = t.RouterPorts(sw)[port].Peer
			}
		}
	}
	return worst
}
