// Custom pattern and topology sizes: use the library below the core.Run
// convenience layer.
//
//	go run ./examples/custompattern
//
// Everything core.Run assembles can be composed by hand: build a
// topology of any (k, n), implement the traffic.Pattern interface for a
// workload of your own, wire up the fabric, injector and engine, and
// measure with a metrics.Window. This example simulates an 8-ary 3-cube
// (512 nodes, the Cray T3D's shape) under a butterfly permutation —
// a pattern the paper does not use — with Duato's adaptive routing.
package main

import (
	"fmt"
	"log"

	"smart/internal/metrics"
	"smart/internal/phys"
	"smart/internal/routing"
	"smart/internal/sim"
	"smart/internal/topology"
	"smart/internal/traffic"
	"smart/internal/wormhole"
)

// butterfly swaps the most and least significant address bits — the k-ary
// n-butterfly exchange permutation.
type butterfly struct {
	bits int
}

func (b butterfly) Name() string { return "butterfly" }

func (b butterfly) Dest(src int, _ *sim.RNG) int {
	hi, lo := (src>>(b.bits-1))&1, src&1
	dst := src &^ (1 | 1<<(b.bits-1))
	return dst | hi | lo<<(b.bits-1)
}

func main() {
	cube, err := topology.NewCube(8, 3)
	if err != nil {
		log.Fatal(err)
	}
	flits, err := phys.PacketFlits(cube)
	if err != nil {
		log.Fatal(err)
	}
	fabric, err := wormhole.NewFabric(cube, wormhole.Config{
		VCs:         4,
		BufDepth:    4,
		PacketFlits: flits,
		InjLanes:    1,
	}, routing.NewDuato(cube))
	if err != nil {
		log.Fatal(err)
	}

	capacity, err := phys.CapacityFlits(cube)
	if err != nil {
		log.Fatal(err)
	}
	const load = 0.5
	rate := load * capacity / float64(flits)
	injector, err := traffic.NewInjector(fabric, butterfly{bits: 9}, rate, 99)
	if err != nil {
		log.Fatal(err)
	}

	engine := sim.NewEngine()
	injector.Register(engine)
	fabric.Register(engine)

	window, err := metrics.NewWindow(fabric, capacity)
	if err != nil {
		log.Fatal(err)
	}
	const warmup, horizon = 2000, 12000
	engine.Run(warmup)
	window.Start(warmup)
	engine.Run(horizon)
	sample, err := window.Measure(horizon, load)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("topology        %s (%d nodes, capacity %.2f flits/node/cycle)\n",
		cube.Name(), cube.Nodes(), capacity)
	fmt.Printf("pattern         butterfly (swap outermost address bits)\n")
	fmt.Printf("offered         %.0f%% of capacity\n", 100*load)
	fmt.Printf("accepted        %.1f%% of capacity\n", 100*sample.Accepted)
	fmt.Printf("latency         %.0f cycles mean, %.0f cycles p95\n", sample.AvgLatency, sample.P95Latency)
	fmt.Printf("mean hops       %.1f switches\n", sample.AvgHops)

	// Drain the network to demonstrate clean shutdown and conservation.
	injector.Stop()
	for !fabric.Drained() {
		engine.Step()
	}
	c := fabric.Counters()
	fmt.Printf("drained         %d packets created, %d delivered, %d flits in flight\n",
		c.PacketsCreated, c.PacketsDelivered, fabric.InFlight())
}
