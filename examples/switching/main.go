// Switching-mode study: why wormhole routing exists.
//
//	go run ./examples/switching
//
// Wormhole switching pipelines a worm across the network so latency is
// roughly distance + length; store-and-forward buffers the whole packet
// at every hop and pays distance x length. This example runs the same
// 16-ary 2-cube under both disciplines (plus virtual cut-through: deep
// buffers without the store-and-forward gate) and prints the
// latency-versus-distance profile from the analysis package — the
// flattening of that curve is wormhole's contribution.
package main

import (
	"fmt"
	"log"

	"smart/internal/analysis"
	"smart/internal/core"
)

func main() {
	modes := []struct {
		name string
		cfg  core.Config
	}{
		{"wormhole (4-flit lanes)", core.Config{Network: core.NetworkCube, Algorithm: core.AlgDuato, VCs: 4}},
		{"virtual cut-through (16-flit lanes)", core.Config{Network: core.NetworkCube, Algorithm: core.AlgDuato, VCs: 4, BufDepth: 16}},
		{"store-and-forward (16-flit lanes)", core.Config{Network: core.NetworkCube, Algorithm: core.AlgDuato, VCs: 4, BufDepth: 16, StoreAndForward: true}},
	}
	for _, m := range modes {
		m.cfg.Pattern = core.PatternUniform
		m.cfg.Load = 0.15 // light load isolates the switching cost
		m.cfg.Seed = 4
		m.cfg.Warmup, m.cfg.Horizon = 1000, 9000
		sm, err := core.NewSimulation(m.cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sm.Run()
		if err != nil {
			log.Fatal(err)
		}
		points, err := analysis.LatencyByDistance(sm.Fabric, sm.Top, m.cfg.Warmup, m.cfg.Horizon)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — mean latency %.0f cycles\n", m.name, res.Sample.AvgLatency)
		fmt.Printf("  distance: ")
		for _, p := range points {
			if p.Distance%4 == 2 { // sample a few distances for brevity
				fmt.Printf("%6d", p.Distance)
			}
		}
		fmt.Printf("\n  latency:  ")
		for _, p := range points {
			if p.Distance%4 == 2 {
				fmt.Printf("%6.0f", p.MeanLatency)
			}
		}
		fmt.Println()
		if len(points) > 1 {
			first, last := points[0], points[len(points)-1]
			perHop := (last.MeanLatency - first.MeanLatency) / float64(last.Distance-first.Distance)
			fmt.Printf("  marginal cost per extra hop: %.1f cycles (packet is 16 flits)\n\n", perHop)
		}
	}
	fmt.Println("wormhole and cut-through pay ~3 cycles per extra hop; store-and-")
	fmt.Println("forward pays the full worm length, the product the paper's §1-§4")
	fmt.Println("router model is designed to avoid.")
}
