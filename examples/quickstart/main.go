// Quickstart: simulate the paper's 4-ary 4-tree under uniform traffic at
// 40% of capacity and print the headline measurements.
//
//	go run ./examples/quickstart
//
// The core API is three steps: describe the experiment in a smart.Config,
// call smart.Run, and read the Result — the cycle-domain sample (accepted
// bandwidth, latency) plus the absolute units derived from the Chien
// router cost model.
package main

import (
	"fmt"
	"log"

	"smart"
)

func main() {
	cfg := smart.Config{
		Network:   smart.NetworkTree, // 4-ary 4-tree (256 nodes) by default
		Algorithm: smart.AlgAdaptive, // ascend adaptively, descend deterministically
		VCs:       2,                 // virtual channels per link
		Pattern:   smart.PatternUniform,
		Load:      0.4, // fraction of the uniform-traffic capacity
		Seed:      42,
	}

	res, err := smart.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("network          %s, clock %.2f ns\n", res.Config.Label(), res.Timing.Clock)
	fmt.Printf("offered load     %.0f%% of capacity\n", 100*res.Sample.Offered)
	fmt.Printf("accepted load    %.1f%% of capacity (%.0f bits/ns aggregate)\n",
		100*res.Sample.Accepted, res.AcceptedBitsNS)
	fmt.Printf("network latency  %.0f cycles = %.2f us (p95 %.0f cycles)\n",
		res.Sample.AvgLatency, res.LatencyNS/1000, res.Sample.P95Latency)
	fmt.Printf("packets          %d delivered over %d measured cycles\n",
		res.Sample.PacketsDelivered, res.Config.Horizon-res.Config.Warmup)

	if res.Sample.Offered-res.Sample.Accepted < 0.02 {
		fmt.Println("\nthe network is below saturation: accepted tracks offered")
	} else {
		fmt.Println("\nthe network is saturated at this load")
	}
}
