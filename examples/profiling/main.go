// Engine profiling: where does the simulator's wall time go?
//
//	go run ./examples/profiling
//
// This example assembles the paper's 4-ary 4-tree under uniform traffic,
// attaches the internal/obs stage profiler and progress reporter to the
// engine, runs the experiment, and prints the per-stage timing report —
// revealing which hardware structure (link transfer, crossbar, routing,
// injection, credit commit, or the traffic process) dominates the
// simulation, the first question any performance work on the hot path
// has to answer.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"smart/internal/core"
	"smart/internal/obs"
)

func main() {
	cfg := core.Config{
		Network:   core.NetworkTree, // 4-ary 4-tree, 256 nodes
		Algorithm: core.AlgAdaptive,
		VCs:       2,
		Pattern:   core.PatternUniform,
		Load:      0.5,
		Seed:      1,
		Warmup:    1000,
		Horizon:   8000,
	}
	sm, err := core.NewSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}

	profiler := obs.NewStageProfiler()
	progress := obs.NewProgress(os.Stderr, 1, 500*time.Millisecond)
	progress.Start()
	if _, err := sm.RunWith(core.Options{Profiler: profiler, Progress: progress}); err != nil {
		log.Fatal(err)
	}
	progress.Stop()

	report := profiler.Report()
	fmt.Printf("\n%s (%s traffic, load %.2f) — per-stage engine timing:\n\n",
		cfg.Label(), cfg.Pattern, cfg.Load)
	fmt.Print(obs.FormatStageReport(report))

	hottest := report[0]
	fmt.Printf("\nhottest stage: %q — %s total over %d ticks (%s per tick)\n",
		hottest.Name, hottest.Total.Round(time.Microsecond),
		hottest.Ticks, hottest.PerTick().Round(time.Nanosecond))
}
