// Congestion map: visualize §9's spatial congestion claims on the cube.
//
//	go run ./examples/congestionmap
//
// The paper observes that under transpose traffic "the destination of
// each packet is a reflection of the source along the diagonal. This
// causes a continuous area of congestion along this diagonal", and that
// under bit-reversal the 16 palindrome nodes "generate some underloaded
// areas ... located along or near the two main diagonals". This example
// runs the 16-ary 2-cube with deterministic routing, collects per-router
// channel utilization over the measurement window, and renders it as a
// heatmap, where those structures are directly visible.
package main

import (
	"fmt"
	"log"

	"smart/internal/chanstats"
	"smart/internal/core"
	"smart/internal/plot"
	"smart/internal/topology"
)

func main() {
	for _, pattern := range []string{core.PatternTranspose, core.PatternBitRev, core.PatternUniform} {
		cfg := core.Config{
			Network:   core.NetworkCube,
			Algorithm: core.AlgDeterministic,
			VCs:       4,
			Pattern:   pattern,
			Load:      0.35,
			Seed:      9,
			Warmup:    1000,
			Horizon:   9000,
		}
		sm, err := core.NewSimulation(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sm.Run(); err != nil {
			log.Fatal(err)
		}
		cube := sm.Top.(*topology.Cube)
		grid, err := chanstats.CubeRouterGrid(sm.Fabric, cube, cfg.Horizon-cfg.Warmup)
		if err != nil {
			log.Fatal(err)
		}
		hm := plot.Heatmap{
			Title:    fmt.Sprintf("router channel utilization, %s traffic at %.0f%% load", pattern, 100*cfg.Load),
			Values:   grid,
			RowLabel: "dimension-1 coordinate",
			ColLabel: "dimension-0 coordinate",
		}
		out, err := hm.Render()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}
	fmt.Println("transpose concentrates load near the main diagonal (reflection")
	fmt.Println("sources and destinations meet there); bit-reversal shows the")
	fmt.Println("underloaded pockets of the 16 silent palindrome nodes; uniform")
	fmt.Println("traffic is flat.")
}
