// Saturation search: locate a network's saturation point by bisection.
//
//	go run ./examples/saturation
//
// The paper defines saturation as the minimum offered bandwidth at which
// the accepted bandwidth falls below the packet creation rate (§6). A
// full sweep (cmd/sweep) maps the whole curve; when only the saturation
// point is wanted, bisection over the offered load finds it in a handful
// of simulations. This example spells the bisection out for clarity —
// the library version is core.FindSaturation — and compares the two cube
// routing algorithms under uniform traffic, reproducing the paper's 60%
// vs 80% headline with a fraction of the work.
package main

import (
	"fmt"
	"log"

	"smart"
)

// saturated reports whether the configuration is saturated at the load:
// accepted falls short of offered by more than the tolerance.
func saturated(cfg smart.Config, load float64) bool {
	cfg.Load = load
	res, err := smart.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  load %.3f -> accepted %.3f\n", load, res.Sample.Accepted)
	return res.Sample.Offered-res.Sample.Accepted > 0.02
}

// bisect returns the saturation load within tol, assuming the network is
// stable at lo and saturated at hi.
func bisect(cfg smart.Config, lo, hi, tol float64) float64 {
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if saturated(cfg, mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}

func main() {
	for _, alg := range []string{smart.AlgDeterministic, smart.AlgDuato} {
		cfg := smart.Config{
			Network:   smart.NetworkCube,
			Algorithm: alg,
			VCs:       4,
			Pattern:   smart.PatternUniform,
			Seed:      3,
			// A shorter horizon is fine for bisection: each probe only
			// needs a stable yes/no, not a publication-grade curve.
			Warmup:  1000,
			Horizon: 10000,
		}
		fmt.Printf("bisecting saturation of cube %s under uniform traffic:\n", alg)
		sat := bisect(cfg, 0.2, 1.0, 0.02)
		fmt.Printf("=> saturation at %.0f%% of capacity\n\n", 100*sat)
	}
	fmt.Println("paper (§9): deterministic saturates at 60%, Duato's adaptive at 80%")
}
